#include "netsize/katzir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "stats/quantile.hpp"

namespace antdense::netsize {
namespace {

using graph::Graph;

TEST(Katzir, ValidatesConfig) {
  const Graph g = graph::make_ring_graph(8);
  KatzirConfig cfg;
  cfg.num_walks = 1;
  EXPECT_THROW(katzir_estimate(g, cfg, 1), std::invalid_argument);
  cfg.num_walks = 4;
  cfg.seed_vertex = 50;
  EXPECT_THROW(katzir_estimate(g, cfg, 1), std::invalid_argument);
}

TEST(Katzir, DeterministicInSeed) {
  const Graph g = graph::make_torus_kd_graph(3, 5);
  KatzirConfig cfg;
  cfg.num_walks = 64;
  cfg.start_stationary = true;
  const auto a = katzir_estimate(g, cfg, 3);
  const auto b = katzir_estimate(g, cfg, 3);
  EXPECT_DOUBLE_EQ(a.size_estimate, b.size_estimate);
}

TEST(Katzir, MedianNearTruthOnRegularGraph) {
  const Graph g = graph::make_torus_kd_graph(3, 6);  // 216 vertices
  KatzirConfig cfg;
  cfg.num_walks = 96;  // ~sqrt(216)*6.5: plenty of birthday collisions
  cfg.start_stationary = true;
  std::vector<double> estimates;
  for (std::uint64_t trial = 0; trial < 80; ++trial) {
    const auto r = katzir_estimate(g, cfg, 400 + trial);
    if (r.saw_collision) {
      estimates.push_back(r.size_estimate);
    }
  }
  ASSERT_GT(estimates.size(), 70u);
  EXPECT_NEAR(stats::median(estimates), 216.0, 50.0);
}

TEST(Katzir, MedianNearTruthOnSkewedGraph) {
  const Graph g = graph::make_barabasi_albert_graph(300, 3, 71);
  KatzirConfig cfg;
  cfg.num_walks = 120;
  cfg.start_stationary = true;
  std::vector<double> estimates;
  for (std::uint64_t trial = 0; trial < 80; ++trial) {
    const auto r = katzir_estimate(g, cfg, 500 + trial);
    if (r.saw_collision) {
      estimates.push_back(r.size_estimate);
    }
  }
  ASSERT_GT(estimates.size(), 60u);
  EXPECT_NEAR(stats::median(estimates), 300.0, 90.0);
}

TEST(Katzir, QueryAccountingIsWalksTimesBurnIn) {
  const Graph g = graph::make_torus_kd_graph(3, 5);
  KatzirConfig cfg;
  cfg.num_walks = 20;
  cfg.burn_in = 35;
  const auto r = katzir_estimate(g, cfg, 7);
  EXPECT_EQ(r.link_queries, 700u);
}

TEST(Katzir, StationaryModeIsFree) {
  const Graph g = graph::make_torus_kd_graph(3, 5);
  KatzirConfig cfg;
  cfg.num_walks = 20;
  cfg.start_stationary = true;
  const auto r = katzir_estimate(g, cfg, 8);
  EXPECT_EQ(r.link_queries, 0u);
}

TEST(Katzir, NoCollisionGivesInfinity) {
  const Graph g = graph::make_torus_kd_graph(3, 12);  // 1728 vertices
  KatzirConfig cfg;
  cfg.num_walks = 2;
  cfg.start_stationary = true;
  const auto r = katzir_estimate(g, cfg, 9);
  EXPECT_FALSE(r.saw_collision);
  EXPECT_TRUE(std::isinf(r.size_estimate));
}

}  // namespace
}  // namespace antdense::netsize
