#include "walk/displacement.hpp"

#include <gtest/gtest.h>

#include "graph/torus2d.hpp"

namespace antdense::walk {
namespace {

using graph::Torus2D;

TEST(MeasureDisplacement, ZeroStepsStaysAtOrigin) {
  const Torus2D torus(16, 16);
  const auto stats =
      measure_displacement(torus, Torus2D::pack(4, 4), 0, 100, 1);
  EXPECT_DOUBLE_EQ(stats.origin_probability, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_position_probability, 1.0);
  EXPECT_EQ(stats.distinct_positions, 1u);
}

TEST(MeasureDisplacement, OneStepUniformOverNeighbors) {
  const Torus2D torus(16, 16);
  const auto stats =
      measure_displacement(torus, Torus2D::pack(4, 4), 1, 40000, 2);
  EXPECT_EQ(stats.distinct_positions, 4u);
  EXPECT_NEAR(stats.max_position_probability, 0.25, 0.02);
  EXPECT_DOUBLE_EQ(stats.origin_probability, 0.0);
}

TEST(MeasureDisplacement, MaxProbabilityDecaysLikeOneOverM) {
  // Lemma 9: max_v P[end at v] = O(1/(m+1) + 1/A).
  const Torus2D torus(128, 128);
  const auto m16 =
      measure_displacement(torus, Torus2D::pack(64, 64), 16, 200000, 3);
  const auto m64 =
      measure_displacement(torus, Torus2D::pack(64, 64), 64, 200000, 3);
  // Ratio should be roughly 4; accept [2, 8].
  const double ratio =
      m16.max_position_probability / m64.max_position_probability;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(MeasureDisplacement, OriginProbabilityMatchesEqualization) {
  // After an even number of steps, P[back at origin] ~ known 2-step 1/4.
  const Torus2D torus(64, 64);
  const auto stats =
      measure_displacement(torus, Torus2D::pack(10, 10), 2, 60000, 4);
  EXPECT_NEAR(stats.origin_probability, 0.25, 0.01);
}

TEST(MeasureDisplacement, SpreadGrowsWithM) {
  const Torus2D torus(128, 128);
  const auto small =
      measure_displacement(torus, Torus2D::pack(0, 0), 4, 20000, 5);
  const auto large =
      measure_displacement(torus, Torus2D::pack(0, 0), 64, 20000, 5);
  EXPECT_GT(large.distinct_positions, small.distinct_positions);
}

}  // namespace
}  // namespace antdense::walk
