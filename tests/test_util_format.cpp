#include "util/format.hpp"

#include <gtest/gtest.h>

namespace antdense::util {
namespace {

TEST(FormatFixed, BasicPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 4), "3.1416");
  EXPECT_EQ(format_fixed(0.0, 1), "0.0");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

TEST(FormatSci, BasicPrecision) {
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_sci(0.00123, 2), "1.23e-03");
}

TEST(FormatShortest, RoundTripsExactly) {
  // Shortest round-trip form: parsing the output recovers the exact
  // double — the property the Registry's canonical specs rely on.
  for (const double v : {0.5, 0.25, 0.0002, 0.013, 1.0, 3.14159265358979,
                         1e-9, 123456.789}) {
    EXPECT_EQ(std::stod(format_shortest(v)), v) << format_shortest(v);
  }
}

TEST(FormatShortest, PicksTheShortestSpelling) {
  EXPECT_EQ(format_shortest(0.5), "0.5");
  EXPECT_EQ(format_shortest(0.05), "0.05");
  // Scientific wins when it is genuinely shorter.
  EXPECT_EQ(format_shortest(0.0002), "2e-04");
}

TEST(FormatAuto, ZeroIsPlainZero) { EXPECT_EQ(format_auto(0.0), "0"); }

TEST(FormatAuto, MidRangeUsesFixed) {
  EXPECT_EQ(format_auto(1.5, 2), "1.50");
  EXPECT_EQ(format_auto(-0.25, 2), "-0.25");
}

TEST(FormatAuto, TinyUsesScientific) {
  const std::string s = format_auto(1e-7, 2);
  EXPECT_NE(s.find('e'), std::string::npos) << s;
}

TEST(FormatAuto, HugeUsesScientific) {
  const std::string s = format_auto(3.2e9, 2);
  EXPECT_NE(s.find('e'), std::string::npos) << s;
}

TEST(FormatAuto, LargeIntegersPrintWithoutDecimals) {
  EXPECT_EQ(format_auto(4096.0), "4096");
}

TEST(FormatCount, InsertsThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(FormatPercent, Basic) {
  EXPECT_EQ(format_percent(0.5, 0), "50%");
  EXPECT_EQ(format_percent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace antdense::util
