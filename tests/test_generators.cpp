#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algos.hpp"

namespace antdense::graph {
namespace {

TEST(RingGraph, CycleStructure) {
  const Graph g = make_ring_graph(8);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 8u);
  std::uint32_t d = 0;
  EXPECT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(PathGraph, EndpointsDegreeOne) {
  const Graph g = make_path_graph(5);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(StarGraph, HubAndLeaves) {
  const Graph g = make_star_graph(10);
  EXPECT_EQ(g.degree(0), 9u);
  for (Graph::vertex v = 1; v < 10; ++v) {
    EXPECT_EQ(g.degree(v), 1u);
  }
}

TEST(CompleteGraphGen, AllPairsConnected) {
  const Graph g = make_complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  std::uint32_t d = 0;
  EXPECT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 5u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Torus2DGraph, FourRegularAndConnected) {
  const Graph g = make_torus2d_graph(5, 7);
  EXPECT_EQ(g.num_vertices(), 35u);
  std::uint32_t d = 0;
  EXPECT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 70u);
}

TEST(Torus2DGraph, EvenSidesBipartite) {
  EXPECT_TRUE(is_bipartite(make_torus2d_graph(4, 6)));
  EXPECT_FALSE(is_bipartite(make_torus2d_graph(5, 5)));
}

TEST(HypercubeGraph, StructureMatches) {
  const Graph g = make_hypercube_graph(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  std::uint32_t d = 0;
  EXPECT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(diameter(g), 4u);
}

TEST(TorusKDGraph, ThreeDimensional) {
  const Graph g = make_torus_kd_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 64u);
  std::uint32_t d = 0;
  EXPECT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 6u);
  EXPECT_TRUE(is_connected(g));
}

TEST(TorusKDGraph, MatchesTorus2DGenerator) {
  const Graph a = make_torus_kd_graph(2, 5);
  const Graph b = make_torus2d_graph(5, 5);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(ErdosRenyi, EdgeCountExactAndSimple) {
  const Graph g = make_erdos_renyi_graph(50, 200, 7);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
  // Simple: no self-loops -> no vertex adjacent to itself.
  for (Graph::vertex v = 0; v < 50; ++v) {
    for (Graph::vertex u : g.neighbors(v)) {
      EXPECT_NE(u, v);
    }
  }
}

TEST(ErdosRenyi, DeterministicInSeed) {
  const Graph a = make_erdos_renyi_graph(30, 60, 11);
  const Graph b = make_erdos_renyi_graph(30, 60, 11);
  for (Graph::vertex v = 0; v < 30; ++v) {
    EXPECT_EQ(a.degree(v), b.degree(v));
  }
}

TEST(ErdosRenyi, RejectsTooManyEdges) {
  EXPECT_THROW(make_erdos_renyi_graph(4, 7, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  const Graph g = make_barabasi_albert_graph(500, 3, 13);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_GE(g.min_degree(), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, HubsEmerge) {
  const Graph g = make_barabasi_albert_graph(2000, 2, 17);
  // Power-law degree profile: the max degree should far exceed the mean.
  EXPECT_GT(g.max_degree(), 8 * static_cast<std::uint32_t>(
                                    g.average_degree()));
}

TEST(WattsStrogatz, BetaZeroIsLattice) {
  const Graph g = make_watts_strogatz_graph(20, 2, 0.0, 3);
  std::uint32_t d = 0;
  EXPECT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  const Graph lattice = make_watts_strogatz_graph(200, 2, 0.0, 5);
  const Graph small_world = make_watts_strogatz_graph(200, 2, 0.3, 5);
  EXPECT_LT(diameter(small_world), diameter(lattice));
}

TEST(RandomRegular, IsSimpleAndRegular) {
  const Graph g = make_random_regular_graph(200, 8, 23);
  std::uint32_t d = 0;
  ASSERT_TRUE(g.is_regular(&d));
  EXPECT_EQ(d, 8u);
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], v) << "self-loop at " << v;
      if (i > 0) {
        EXPECT_NE(nbrs[i], nbrs[i - 1]) << "parallel edge at " << v;
      }
    }
  }
}

TEST(RandomRegular, ConnectedWithHighProbability) {
  // Random k-regular graphs with k >= 3 are connected whp.
  EXPECT_TRUE(is_connected(make_random_regular_graph(300, 4, 29)));
}

TEST(RandomRegular, RejectsOddProduct) {
  EXPECT_THROW(make_random_regular_graph(5, 3, 1), std::invalid_argument);
}

TEST(RandomRegular, DeterministicInSeed) {
  const Graph a = make_random_regular_graph(64, 4, 99);
  const Graph b = make_random_regular_graph(64, 4, 99);
  for (Graph::vertex v = 0; v < 64; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]);
    }
  }
}

}  // namespace
}  // namespace antdense::graph
