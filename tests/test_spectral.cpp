#include "spectral/walk_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/generators.hpp"

namespace antdense::spectral {
namespace {

using graph::Graph;
using graph::make_complete_graph;
using graph::make_hypercube_graph;
using graph::make_ring_graph;
using graph::make_star_graph;
using graph::make_torus2d_graph;

TEST(StationaryDistribution, UniformOnRegularGraphs) {
  const Graph g = make_ring_graph(10);
  const auto pi = stationary_distribution(g);
  for (double p : pi) {
    EXPECT_NEAR(p, 0.1, 1e-12);
  }
}

TEST(StationaryDistribution, DegreeProportionalOnStar) {
  const Graph g = make_star_graph(5);  // hub degree 4, leaves 1; 2|E| = 8
  const auto pi = stationary_distribution(g);
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  for (int v = 1; v < 5; ++v) {
    EXPECT_NEAR(pi[v], 0.125, 1e-12);
  }
}

TEST(EvolveStep, PreservesMass) {
  const Graph g = make_torus2d_graph(4, 4);
  std::vector<double> dist(16, 0.0);
  dist[3] = 1.0;
  for (int s = 0; s < 5; ++s) {
    dist = evolve_step(g, dist);
    double total = 0.0;
    for (double p : dist) {
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(EvolveStep, OneStepSpreadsUniformlyToNeighbors) {
  const Graph g = make_ring_graph(6);
  std::vector<double> dist(6, 0.0);
  dist[0] = 1.0;
  dist = evolve_step(g, dist);
  EXPECT_NEAR(dist[1], 0.5, 1e-12);
  EXPECT_NEAR(dist[5], 0.5, 1e-12);
  EXPECT_NEAR(dist[0], 0.0, 1e-12);
}

TEST(EvolveStep, StationaryIsFixedPoint) {
  const Graph g = make_star_graph(6);
  const auto pi = stationary_distribution(g);
  const auto after = evolve_step(g, pi);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(after[i], pi[i], 1e-12);
  }
}

TEST(TvDistance, BasicProperties) {
  const std::vector<double> a{0.5, 0.5, 0.0};
  const std::vector<double> b{0.0, 0.5, 0.5};
  EXPECT_NEAR(tv_distance(a, b), 0.5, 1e-12);
  EXPECT_NEAR(tv_distance(a, a), 0.0, 1e-12);
}

TEST(SecondEigenvalue, CompleteGraphKnownValue) {
  // K_n walk matrix eigenvalues: 1 and -1/(n-1).
  const Graph g = make_complete_graph(10);
  EXPECT_NEAR(second_eigenvalue_magnitude(g), 1.0 / 9.0, 1e-6);
}

TEST(SecondEigenvalue, EvenCycleIsBipartiteLambdaOne) {
  const Graph g = make_ring_graph(8);
  EXPECT_NEAR(second_eigenvalue_magnitude(g), 1.0, 1e-6);
}

TEST(SecondEigenvalue, OddCycleKnownValue) {
  // C_n eigenvalues: cos(2 pi k / n); for odd n the magnitude max over
  // k>0 is cos(pi/n) (from the negative end) — for n=9: cos(pi/9).
  const Graph g = make_ring_graph(9);
  EXPECT_NEAR(second_eigenvalue_magnitude(g, 20000),
              std::cos(std::numbers::pi / 9.0), 1e-4);
}

TEST(SecondEigenvalue, HypercubeKnownValue) {
  // Q_k walk matrix eigenvalues: (k-2i)/k; the magnitude max below 1 is
  // 1 (bipartite: eigenvalue -1).  Check that it is detected.
  const Graph g = make_hypercube_graph(4);
  EXPECT_NEAR(second_eigenvalue_magnitude(g), 1.0, 1e-6);
}

TEST(SecondEigenvalue, RandomRegularIsExpander) {
  const Graph g = graph::make_random_regular_graph(256, 8, 4242);
  const double lambda = second_eigenvalue_magnitude(g);
  // Friedman: lambda ~ 2 sqrt(k-1)/k ≈ 0.66 for k=8; generous envelope.
  EXPECT_LT(lambda, 0.8);
  EXPECT_GT(lambda, 0.3);
}

TEST(SpectralGap, ComplementOfLambda) {
  const Graph g = make_complete_graph(5);
  EXPECT_NEAR(spectral_gap(g), 1.0 - 0.25, 1e-6);
}

TEST(BurnInSteps, FormulaAndMonotonicity) {
  EXPECT_EQ(burn_in_steps(100, 0.1, 0.0),
            static_cast<std::uint32_t>(std::ceil(std::log(1000.0))));
  EXPECT_GT(burn_in_steps(100, 0.1, 0.9), burn_in_steps(100, 0.1, 0.5));
  EXPECT_GT(burn_in_steps(100, 0.01, 0.5), burn_in_steps(100, 0.1, 0.5));
}

TEST(BurnInSteps, RejectsBadInputs) {
  EXPECT_THROW(burn_in_steps(0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(burn_in_steps(10, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(burn_in_steps(10, 0.1, 1.0), std::invalid_argument);
}

TEST(MixingTime, CompleteGraphMixesInstantly) {
  const Graph g = make_complete_graph(50);
  EXPECT_LE(mixing_time_from(g, 0, 0.05, 100), 3u);
}

TEST(MixingTime, OddRingMixesSlowly) {
  const Graph g = make_ring_graph(25);
  const auto fast = mixing_time_from(make_complete_graph(25), 0, 0.05, 2000);
  const auto slow = mixing_time_from(g, 0, 0.05, 2000);
  EXPECT_GT(slow, 10 * fast);
}

TEST(MixingTime, ReturnsSentinelWhenNotReached) {
  const Graph g = make_ring_graph(8);  // bipartite: never mixes
  EXPECT_EQ(mixing_time_from(g, 0, 0.01, 50), 51u);
}

}  // namespace
}  // namespace antdense::spectral
