#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace antdense::graph {
namespace {

Graph triangle() {
  return Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (Graph::vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
}

TEST(Graph, NeighborsSortedAndSymmetric) {
  const Graph g = Graph::from_edges(4, {{1, 0}, {3, 1}, {1, 2}});
  const auto nbrs = g.neighbors(1);
  std::vector<Graph::vertex> v(nbrs.begin(), nbrs.end());
  EXPECT_EQ(v, (std::vector<Graph::vertex>{0, 2, 3}));
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(Graph, NeighborIndexAccess) {
  const Graph g = triangle();
  EXPECT_EQ(g.neighbor(0, 0), 1u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
}

TEST(Graph, RejectsOutOfRangeEdges) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, ParallelEdgesCounted) {
  const Graph g = Graph::from_edges(2, {{0, 1}, {0, 1}});
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, SelfLoopAppearsTwiceInAdjacency) {
  const Graph g = Graph::from_edges(2, {{0, 0}, {0, 1}});
  EXPECT_EQ(g.degree(0), 3u);  // loop contributes 2 + edge contributes 1
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, IsRegularDetectsRegularity) {
  std::uint32_t d = 0;
  EXPECT_TRUE(triangle().is_regular(&d));
  EXPECT_EQ(d, 2u);
  const Graph star = Graph::from_edges(3, {{0, 1}, {0, 2}});
  EXPECT_FALSE(star.is_regular());
}

TEST(Graph, IsRegularNullOutIsFine) {
  EXPECT_TRUE(triangle().is_regular(nullptr));
}

TEST(Graph, DegreeExtremesAndAverage) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

TEST(Graph, SumDegreeSquared) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  // degrees: 3,1,1,1 -> 9+1+1+1 = 12
  EXPECT_EQ(g.sum_degree_squared(), 12u);
}

TEST(Graph, LargeGraphConstruction) {
  std::vector<std::pair<Graph::vertex, Graph::vertex>> edges;
  constexpr std::uint32_t n = 10000;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(i, i + 1);
  }
  const Graph g = Graph::from_edges(n, edges);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_EQ(g.num_edges(), n - 1);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

}  // namespace
}  // namespace antdense::graph
