#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::rng {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(DeriveSeed, OrderSensitive) {
  EXPECT_NE(derive_seed(7, 1, 2), derive_seed(7, 2, 1));
}

TEST(DeriveSeed, IndexSensitive) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(derive_seed(123, i));
  }
  EXPECT_EQ(seeds.size(), 1000u) << "derived seeds must be distinct";
}

TEST(Xoshiro256pp, DeterministicFromSeed) {
  Xoshiro256pp a(99);
  Xoshiro256pp b(99);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256pp, LongJumpDiverges) {
  Xoshiro256pp a(5);
  Xoshiro256pp b(5);
  b.long_jump();
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (a() != b()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro256pp, BitsLookBalanced) {
  Xoshiro256pp gen(321);
  std::uint64_t ones = 0;
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    ones += __builtin_popcountll(gen());
  }
  const double fraction =
      static_cast<double>(ones) / (64.0 * kDraws);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(UniformBelow, AlwaysInRange) {
  Xoshiro256pp gen(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(uniform_below(gen, bound), bound);
    }
  }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
  Xoshiro256pp gen(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(uniform_below(gen, 1), 0u);
  }
}

TEST(UniformBelow, BoundZeroIsGuardedNotDivisionByZero) {
  // bound == 0 violates the documented precondition.  It used to divide
  // by zero computing the rejection threshold; now debug builds throw
  // the assertion and release builds return 0 deterministically, and in
  // both cases no word is consumed from the generator.
  Xoshiro256pp gen(9);
  Xoshiro256pp untouched(9);
#ifdef NDEBUG
  EXPECT_EQ(uniform_below(gen, 0), 0u);
#else
  EXPECT_THROW(uniform_below(gen, 0), std::logic_error);
#endif
  EXPECT_EQ(gen(), untouched());
}

TEST(UniformBelow, ChiSquareUniformity) {
  Xoshiro256pp gen(2024);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[uniform_below(gen, kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(UniformInt, CoversInclusiveRange) {
  Xoshiro256pp gen(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = uniform_int(gen, -2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(UniformInt, RejectsInvertedRange) {
  Xoshiro256pp gen(12);
  EXPECT_THROW(uniform_int(gen, 3, 2), std::invalid_argument);
}

TEST(UniformUnit, InHalfOpenInterval) {
  Xoshiro256pp gen(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform_unit(gen);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformUnit, MeanIsHalf) {
  Xoshiro256pp gen(14);
  double acc = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    acc += uniform_unit(gen);
  }
  EXPECT_NEAR(acc / kDraws, 0.5, 0.005);
}

TEST(Bernoulli, ZeroAndOneAreDegenerate) {
  Xoshiro256pp gen(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(gen, 0.0));
    EXPECT_TRUE(bernoulli(gen, 1.0));
  }
}

TEST(Bernoulli, RateMatches) {
  Xoshiro256pp gen(16);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += bernoulli(gen, 0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Binomial, DegenerateCases) {
  Xoshiro256pp gen(40);
  EXPECT_EQ(binomial(gen, 0, 0.5), 0u);
  EXPECT_EQ(binomial(gen, 100, 0.0), 0u);
  EXPECT_EQ(binomial(gen, 100, 1.0), 100u);
  EXPECT_THROW(binomial(gen, 10, -0.1), std::invalid_argument);
  EXPECT_THROW(binomial(gen, 10, 1.1), std::invalid_argument);
}

TEST(Binomial, NeverExceedsTrialCount) {
  Xoshiro256pp gen(41);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LE(binomial(gen, 7, 0.9), 7u);
  }
}

TEST(Binomial, MeanAndVarianceMatch) {
  // n p and n p (1-p), on both sides of the p = 0.5 symmetry split.
  for (double p : {0.05, 0.3, 0.5, 0.7, 0.95}) {
    Xoshiro256pp gen(static_cast<std::uint64_t>(p * 1000) + 42);
    constexpr std::uint64_t kN = 20;
    constexpr int kDraws = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const auto x = static_cast<double>(binomial(gen, kN, p));
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / kDraws;
    const double var = sum_sq / kDraws - mean * mean;
    EXPECT_NEAR(mean, kN * p, 0.05) << "p = " << p;
    EXPECT_NEAR(var, kN * p * (1.0 - p), 0.15) << "p = " << p;
  }
}

TEST(Binomial, SmallCountsMatchExactPmf) {
  // n = 2 is the common occupancy case in the engine; check the full
  // distribution, not just moments.
  Xoshiro256pp gen(44);
  constexpr double kP = 0.35;
  constexpr int kDraws = 300000;
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[binomial(gen, 2, kP)];
  }
  const double q = 1.0 - kP;
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, q * q, 0.005);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kDraws, 2 * kP * q, 0.005);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, kP * kP, 0.005);
}

TEST(CoinFlip, RoughlyFair) {
  Xoshiro256pp gen(17);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    heads += coin_flip(gen) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(Shuffle, IsPermutation) {
  Xoshiro256pp gen(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  shuffle(gen, shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Shuffle, FirstPositionUniform) {
  Xoshiro256pp gen(19);
  constexpr int kItems = 5;
  constexpr int kTrials = 50000;
  std::vector<int> first_counts(kItems, 0);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    shuffle(gen, v);
    ++first_counts[v[0]];
  }
  for (int c : first_counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.2, 0.015);
  }
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Xoshiro256pp gen(20);
  const auto sample = sample_without_replacement(gen, 100, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::uint64_t v : sample) {
    EXPECT_LT(v, 100u);
  }
}

TEST(SampleWithoutReplacement, FullPopulation) {
  Xoshiro256pp gen(21);
  const auto sample = sample_without_replacement(gen, 8, 8);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SampleWithoutReplacement, KZeroEmpty) {
  Xoshiro256pp gen(22);
  EXPECT_TRUE(sample_without_replacement(gen, 10, 0).empty());
}

TEST(SampleWithoutReplacement, RejectsOversample) {
  Xoshiro256pp gen(23);
  EXPECT_THROW(sample_without_replacement(gen, 3, 4), std::invalid_argument);
}

TEST(SampleWithoutReplacement, MarginalsUniform) {
  Xoshiro256pp gen(24);
  constexpr int kTrials = 30000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (std::uint64_t v : sample_without_replacement(gen, 10, 3)) {
      ++counts[v];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

}  // namespace
}  // namespace antdense::rng
