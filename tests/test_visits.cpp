#include "walk/visits.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/torus2d.hpp"

namespace antdense::walk {
namespace {

using graph::Torus2D;

TEST(MeasureVisits, MeanVisitsMatchesTOverA) {
  // E[c_j] = (t+1)/A here (we also count a visit at round 0 when the
  // uniform start lands on the target) — within noise of t/A.
  const Torus2D torus(32, 32);  // A = 1024
  const std::uint32_t t = 256;
  const auto stats = measure_visits(torus, Torus2D::pack(5, 5), t, 60000,
                                    1, 2);
  EXPECT_NEAR(stats.mean_visits, (t + 1.0) / 1024.0, 0.03);
}

TEST(MeasureVisits, PVisitBelowMeanVisits) {
  // P[c >= 1] <= E[c] always (Markov); strict here due to repeat visits.
  const Torus2D torus(32, 32);
  const auto stats = measure_visits(torus, Torus2D::pack(0, 0), 512, 30000,
                                    2, 2);
  EXPECT_LT(stats.p_visit, stats.mean_visits);
}

TEST(MeasureVisits, ConditionalVisitsGrowLogarithmically) {
  // Corollary 15: E[c | c >= 1] = Theta(log 2t).  Quadrupling t should
  // roughly add a constant (log 4) rather than multiply by 4.
  const Torus2D torus(64, 64);
  const auto short_stats =
      measure_visits(torus, Torus2D::pack(3, 3), 128, 40000, 3, 2);
  const auto long_stats =
      measure_visits(torus, Torus2D::pack(3, 3), 512, 40000, 3, 2);
  EXPECT_GT(long_stats.mean_visits_given_any,
            short_stats.mean_visits_given_any);
  EXPECT_LT(long_stats.mean_visits_given_any,
            2.0 * short_stats.mean_visits_given_any);
}

TEST(MeasureVisits, CountsVectorConsistent) {
  const Torus2D torus(16, 16);
  const auto stats = measure_visits(torus, Torus2D::pack(1, 1), 64, 5000,
                                    4, 2);
  ASSERT_EQ(stats.counts.size(), 5000u);
  double total = 0.0;
  std::uint64_t visited = 0;
  for (double c : stats.counts) {
    total += c;
    visited += c >= 1.0 ? 1 : 0;
  }
  EXPECT_NEAR(stats.mean_visits, total / 5000.0, 1e-12);
  EXPECT_NEAR(stats.p_visit, visited / 5000.0, 1e-12);
}

}  // namespace
}  // namespace antdense::walk
