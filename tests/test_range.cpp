#include "walk/range.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/complete.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"

namespace antdense::walk {
namespace {

TEST(WalkRange, BoundsAndShape) {
  const graph::Torus2D torus(64, 64);
  const auto stats = measure_walk_range(torus, 100, 3000, 1, 2);
  ASSERT_EQ(stats.samples.size(), 3000u);
  for (double s : stats.samples) {
    EXPECT_GE(s, 2.0);          // at least start + one neighbor
    EXPECT_LE(s, 101.0);        // at most t+1 distinct nodes
  }
  EXPECT_GT(stats.mean_range_fraction, 0.0);
  EXPECT_LE(stats.mean_range_fraction, 1.0);
}

TEST(WalkRange, CompleteGraphNearlyAllDistinct) {
  // On K_A with A >> t, almost every step hits a fresh node.
  const graph::CompleteGraph g(1 << 20);
  const auto stats = measure_walk_range(g, 256, 2000, 2, 2);
  EXPECT_GT(stats.mean_range_fraction, 0.99);
}

TEST(WalkRange, RingRangeIsSqrtT) {
  // 1-D range after t steps ~ sqrt(t): quadrupling t doubles the range.
  const graph::Ring ring(1 << 20);
  const auto small = measure_walk_range(ring, 256, 4000, 3, 2);
  const auto large = measure_walk_range(ring, 1024, 4000, 3, 2);
  EXPECT_NEAR(large.mean_range / small.mean_range, 2.0, 0.25);
}

TEST(WalkRange, Torus2DRangeIsTOverLogT) {
  // Dvoretzky–Erdős: range ~ pi t / log t on the 2-D lattice.  The
  // fraction range/(t+1) should therefore decay like 1/log t: compare
  // the product fraction*log(t) at two widely separated t.
  const graph::Torus2D torus(512, 512);  // large enough to avoid wrap
  const auto small = measure_walk_range(torus, 256, 3000, 4, 2);
  const auto large = measure_walk_range(torus, 4096, 3000, 4, 2);
  EXPECT_LT(large.mean_range_fraction, small.mean_range_fraction);
  const double product_small =
      small.mean_range_fraction * std::log(256.0);
  const double product_large =
      large.mean_range_fraction * std::log(4096.0);
  EXPECT_NEAR(product_large / product_small, 1.0, 0.25);
}

TEST(WalkRange, DeterministicAcrossThreads) {
  const graph::Torus2D torus(32, 32);
  const auto a = measure_walk_range(torus, 64, 1000, 5, 1);
  const auto b = measure_walk_range(torus, 64, 1000, 5, 2);
  EXPECT_EQ(a.samples, b.samples);
}

}  // namespace
}  // namespace antdense::walk
