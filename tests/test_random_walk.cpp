#include "walk/random_walk.hpp"

#include <gtest/gtest.h>

#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::walk {
namespace {

using graph::Ring;
using graph::Torus2D;

TEST(WalkSteps, ZeroStepsReturnsStart) {
  const Torus2D torus(8, 8);
  rng::Xoshiro256pp gen(1);
  const auto start = Torus2D::pack(2, 3);
  EXPECT_EQ(walk_steps(torus, start, 0, gen), start);
}

TEST(WalkSteps, ParityOnBipartiteTorus) {
  // The even-sided torus is bipartite: an m-step walk ends at a node
  // whose L1 distance from the start has the parity of m.
  const Torus2D torus(16, 16);
  rng::Xoshiro256pp gen(2);
  const auto start = Torus2D::pack(8, 8);
  for (std::uint32_t m : {1u, 2u, 5u, 8u, 13u}) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto end = walk_steps(torus, start, m, gen);
      EXPECT_EQ(torus.l1_distance(start, end) % 2, m % 2)
          << "m=" << m;
    }
  }
}

TEST(WalkPath, LengthAndAdjacency) {
  const Torus2D torus(8, 8);
  rng::Xoshiro256pp gen(3);
  const auto path = walk_path(torus, Torus2D::pack(0, 0), 20, gen);
  ASSERT_EQ(path.size(), 21u);
  EXPECT_EQ(path[0], Torus2D::pack(0, 0));
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(torus.l1_distance(path[i - 1], path[i]), 1u);
  }
}

TEST(WalkPath, RingStepsAreAdjacent) {
  const Ring ring(10);
  rng::Xoshiro256pp gen(4);
  const auto path = walk_path(ring, Ring::node_type{0}, 50, gen);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(ring.distance(path[i - 1], path[i]), 1u);
  }
}

TEST(WalkSteps, DeterministicGivenGeneratorState) {
  const Torus2D torus(8, 8);
  rng::Xoshiro256pp a(5);
  rng::Xoshiro256pp b(5);
  EXPECT_EQ(walk_steps(torus, Torus2D::pack(1, 1), 100, a),
            walk_steps(torus, Torus2D::pack(1, 1), 100, b));
}

}  // namespace
}  // namespace antdense::walk
