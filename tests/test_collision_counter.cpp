#include "sim/collision_counter.hpp"

#include <gtest/gtest.h>

namespace antdense::sim {
namespace {

TEST(CollisionCounter, RequiresPositiveCapacity) {
  EXPECT_THROW(CollisionCounter(0), std::invalid_argument);
}

TEST(CollisionCounter, AddBeforeBeginRoundThrows) {
  CollisionCounter c(4);
  EXPECT_THROW(c.add(1), std::invalid_argument);
}

TEST(CollisionCounter, CountsWithinRound) {
  CollisionCounter c(8);
  c.begin_round();
  EXPECT_EQ(c.add(42), 1u);
  EXPECT_EQ(c.add(42), 2u);
  EXPECT_EQ(c.add(42), 3u);
  EXPECT_EQ(c.add(7), 1u);
  EXPECT_EQ(c.occupancy(42), 3u);
  EXPECT_EQ(c.occupancy(7), 1u);
  EXPECT_EQ(c.occupancy(99), 0u);
}

TEST(CollisionCounter, RoundsAreIndependent) {
  CollisionCounter c(8);
  c.begin_round();
  c.add(5);
  c.add(5);
  c.begin_round();
  EXPECT_EQ(c.occupancy(5), 0u);
  EXPECT_EQ(c.add(5), 1u);
}

TEST(CollisionCounter, OccupancyBeforeFirstRoundIsZero) {
  CollisionCounter c(4);
  EXPECT_EQ(c.occupancy(1), 0u);
}

TEST(CollisionCounter, HandlesCollidingHashSlots) {
  // Fill to declared capacity with distinct keys spanning a wide range;
  // linear probing must keep all counts separate.
  constexpr std::size_t kKeys = 64;
  CollisionCounter c(kKeys);
  c.begin_round();
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(c.add(k * 0x9E3779B97F4A7C15ULL), 1u);
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(c.occupancy(k * 0x9E3779B97F4A7C15ULL), 1u);
  }
}

TEST(CollisionCounter, OverCapacityIsAnInvariantViolation) {
  CollisionCounter c(2);
  c.begin_round();
  c.add(1);
  c.add(2);
  EXPECT_THROW(c.add(3), std::logic_error);
}

TEST(CollisionCounter, RepeatedKeysDoNotConsumeCapacity) {
  CollisionCounter c(2);
  c.begin_round();
  for (int i = 0; i < 100; ++i) {
    c.add(77);
  }
  EXPECT_EQ(c.occupancy(77), 100u);
  EXPECT_EQ(c.add(78), 1u);
}

TEST(CollisionCounter, ManyRoundsStayCorrect) {
  CollisionCounter c(4);
  for (int r = 0; r < 10000; ++r) {
    c.begin_round();
    c.add(r % 7);
    c.add(r % 7);
    EXPECT_EQ(c.occupancy(r % 7), 2u);
  }
}

TEST(CollisionCounter, CapacityIsPowerOfTwoTimesFour) {
  CollisionCounter c(10);
  EXPECT_GE(c.capacity(), 40u);
  EXPECT_EQ(c.capacity() & (c.capacity() - 1), 0u);
}

}  // namespace
}  // namespace antdense::sim
