#include "sim/density_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/complete.hpp"
#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

using graph::CompleteGraph;
using graph::Torus2D;

TEST(DensityConfig, ValidatesFields) {
  DensityConfig cfg;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // zero agents
  cfg.num_agents = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // zero rounds
  cfg.rounds = 1;
  EXPECT_NO_THROW(cfg.validate());
  cfg.lazy_probability = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.lazy_probability = 0.0;
  cfg.detection_miss_probability = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(DensityConfig, ValidatesProbabilityEdges) {
  DensityConfig cfg;
  cfg.num_agents = 2;
  cfg.rounds = 1;
  // Laziness of exactly 1.0 (never moves) is rejected; just below is ok.
  cfg.lazy_probability = std::nextafter(1.0, 0.0);
  EXPECT_NO_THROW(cfg.validate());
  cfg.lazy_probability = -0.01;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.lazy_probability = 0.0;
  // Miss/spurious may be exactly 0 or 1, nothing outside.
  cfg.detection_miss_probability = 1.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.detection_miss_probability = -0.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.detection_miss_probability = 0.0;
  cfg.spurious_collision_probability = 1.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.spurious_collision_probability = 1.0 + 1e-9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.spurious_collision_probability = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RunDensityWalk, InvalidConfigRejectedBeforeRunning) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;  // zero agents AND zero rounds
  EXPECT_THROW(run_density_walk(torus, cfg, 1), std::invalid_argument);
  cfg.num_agents = 4;
  EXPECT_THROW(run_density_walk(torus, cfg, 1), std::invalid_argument);
  cfg.rounds = 2;
  cfg.lazy_probability = 1.0;
  EXPECT_THROW(run_density_walk(torus, cfg, 1), std::invalid_argument);
}

TEST(RunDensityWalk, DeterministicInSeed) {
  const Torus2D torus(16, 16);
  DensityConfig cfg;
  cfg.num_agents = 20;
  cfg.rounds = 50;
  const DensityResult a = run_density_walk(torus, cfg, 77);
  const DensityResult b = run_density_walk(torus, cfg, 77);
  EXPECT_EQ(a.collision_counts, b.collision_counts);
  const DensityResult c = run_density_walk(torus, cfg, 78);
  EXPECT_NE(a.collision_counts, c.collision_counts);
}

TEST(RunDensityWalk, TrueDensityDefinition) {
  const Torus2D torus(10, 10);
  DensityConfig cfg;
  cfg.num_agents = 11;
  cfg.rounds = 5;
  const DensityResult r = run_density_walk(torus, cfg, 1);
  EXPECT_DOUBLE_EQ(r.true_density(), 10.0 / 100.0);  // (N-1)/A
}

TEST(RunDensityWalk, CollisionCountsSymmetricInTotal) {
  // Every collision is counted by both parties: the sum over agents of
  // collision counts must be even in every run where occupancies are
  // pairs... more robustly, the total equals sum over rounds and nodes
  // of occ*(occ-1), which is always even.
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 12;
  cfg.rounds = 64;
  const DensityResult r = run_density_walk(torus, cfg, 5);
  std::uint64_t total = 0;
  for (std::uint64_t c : r.collision_counts) {
    total += c;
  }
  EXPECT_EQ(total % 2, 0u);
}

TEST(RunDensityWalk, UnbiasedOnTorus) {
  // Lemma 2 / Corollary 3: E[d~] = d.  Average many runs.
  const Torus2D torus(12, 12);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 40;
  const double d = 9.0 / 144.0;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 400; ++trial) {
    const DensityResult r = run_density_walk(torus, cfg, 1000 + trial);
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), d, 4.0 * acc.standard_error() + 1e-12)
      << "mean " << acc.mean() << " vs d " << d;
}

TEST(RunDensityWalk, UnbiasedOnCompleteGraph) {
  const CompleteGraph g(64);
  DensityConfig cfg;
  cfg.num_agents = 8;
  cfg.rounds = 64;
  const double d = 7.0 / 64.0;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    const DensityResult r = run_density_walk(g, cfg, 2000 + trial);
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), d, 4.0 * acc.standard_error() + 1e-12);
}

TEST(RunDensityWalk, CustomInitialPositionsRespected) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 2;
  cfg.rounds = 1;
  // Two agents on the same node: after one synchronized step they collide
  // with probability 1/4; over many trials the empirical rate shows the
  // clustering (far from the uniform-placement rate 1/64).
  std::vector<Torus2D::node_type> start{Torus2D::pack(3, 3),
                                        Torus2D::pack(3, 3)};
  int collisions = 0;
  constexpr int kTrials = 8000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const DensityResult r =
        run_density_walk(torus, cfg, 3000 + trial, &start);
    collisions += r.collision_counts[0] > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / kTrials, 0.25, 0.02);
}

TEST(RunDensityWalk, InitialPositionSizeMismatchThrows) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 3;
  cfg.rounds = 1;
  std::vector<Torus2D::node_type> start{Torus2D::pack(0, 0)};
  EXPECT_THROW(run_density_walk(torus, cfg, 1, &start),
               std::invalid_argument);
}

TEST(RunDensityWalk, FullMissDetectionZeroesCounts) {
  const Torus2D torus(4, 4);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 32;
  cfg.detection_miss_probability = 1.0;
  const DensityResult r = run_density_walk(torus, cfg, 9);
  for (std::uint64_t c : r.collision_counts) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(RunDensityWalk, SpuriousRateInflatesEstimate) {
  const Torus2D torus(32, 32);
  DensityConfig cfg;
  cfg.num_agents = 2;  // essentially no true collisions
  cfg.rounds = 200;
  cfg.spurious_collision_probability = 0.5;
  const DensityResult r = run_density_walk(torus, cfg, 10);
  // Expect ~0.5 spurious detections per round per agent.
  const double rate =
      static_cast<double>(r.collision_counts[0]) / cfg.rounds;
  EXPECT_NEAR(rate, 0.5, 0.15);
}

TEST(RunDensityWalk, LazyWalkStillUnbiased) {
  // Laziness does not break regularity: uniform stationary marginals
  // keep E[d~] = d.
  const Torus2D torus(10, 10);
  DensityConfig cfg;
  cfg.num_agents = 8;
  cfg.rounds = 50;
  cfg.lazy_probability = 0.3;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 400; ++trial) {
    const DensityResult r = run_density_walk(torus, cfg, 4000 + trial);
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), 7.0 / 100.0, 4.0 * acc.standard_error() + 1e-12);
}

TEST(RunPropertyWalk, PropertySizeMismatchThrows) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 5;
  cfg.rounds = 2;
  const std::vector<bool> too_few(4, true);
  EXPECT_THROW(run_property_walk(torus, cfg, too_few, 1),
               std::invalid_argument);
  const std::vector<bool> too_many(6, true);
  EXPECT_THROW(run_property_walk(torus, cfg, too_many, 1),
               std::invalid_argument);
  const std::vector<bool> empty;
  EXPECT_THROW(run_property_walk(torus, cfg, empty, 1),
               std::invalid_argument);
}

TEST(RunPropertyWalk, SplitsCountsByClass) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 16;
  cfg.rounds = 100;
  std::vector<bool> has_property(16, false);
  for (int i = 0; i < 4; ++i) {
    has_property[i] = true;
  }
  const PropertyResult r = run_property_walk(torus, cfg, has_property, 21);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_LE(r.property_counts[i], r.total_counts[i]) << "agent " << i;
  }
}

TEST(RunPropertyWalk, AllPropertyMeansCountsMatch) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 60;
  std::vector<bool> has_property(10, true);
  const PropertyResult r = run_property_walk(torus, cfg, has_property, 22);
  EXPECT_EQ(r.total_counts, r.property_counts);
}

TEST(RunPropertyWalk, NoPropertyMeansZeroPropertyCounts) {
  const Torus2D torus(8, 8);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 60;
  std::vector<bool> has_property(10, false);
  const PropertyResult r = run_property_walk(torus, cfg, has_property, 23);
  for (std::uint64_t c : r.property_counts) {
    EXPECT_EQ(c, 0u);
  }
}

}  // namespace
}  // namespace antdense::sim
