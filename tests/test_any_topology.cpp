// Differential suite for graph::AnyTopology: walks driven through the
// type-erased handle must be bit-identical (fixed seed) to walks driven
// through each wrapped concrete topology, for both the batched and the
// lazy (sequential) stepping paths — erasure may cost dispatch, never
// a different stream.
#include "graph/any_topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/ba.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/gnp.hpp"
#include "graph/graph.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/rgg2d.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "rng/xoshiro256pp.hpp"
#include "scenario/registry.hpp"
#include "sim/density_sim.hpp"
#include "sim/trajectory.hpp"
#include "sim/trial_runner.hpp"

namespace antdense {
namespace {

constexpr std::uint64_t kSeed = 0xD1FFu;

sim::DensityConfig config(double lazy) {
  sim::DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 50;
  cfg.lazy_probability = lazy;
  return cfg;
}

/// Runs the same density walk through the concrete topology and through
/// an AnyTopology wrapper and demands identical per-agent counts.
template <graph::Topology T>
void expect_identical_walks(const T& topo) {
  const graph::AnyTopology any(topo);
  EXPECT_EQ(any.num_nodes(), topo.num_nodes());
  EXPECT_EQ(any.degree(), topo.degree());
  EXPECT_EQ(any.name(), topo.name());

  for (const double lazy : {0.0, 0.3}) {
    SCOPED_TRACE(topo.name() + (lazy > 0.0 ? " lazy" : " batched"));
    const sim::DensityResult concrete =
        sim::run_density_walk(topo, config(lazy), kSeed);
    const sim::DensityResult erased =
        sim::run_density_walk(any, config(lazy), kSeed);
    EXPECT_EQ(concrete.collision_counts, erased.collision_counts);
    EXPECT_EQ(concrete.num_nodes, erased.num_nodes);
  }
}

TEST(AnyTopology, SatisfiesTopologyConcepts) {
  static_assert(graph::Topology<graph::AnyTopology>);
  static_assert(graph::BulkTopology<graph::AnyTopology>);
}

TEST(AnyTopology, MatchesTorus2D) {
  expect_identical_walks(graph::Torus2D(24, 17));
}

TEST(AnyTopology, MatchesRing) { expect_identical_walks(graph::Ring(701)); }

TEST(AnyTopology, MatchesHypercube) {
  expect_identical_walks(graph::Hypercube(10));
}

TEST(AnyTopology, MatchesTorusKD) {
  expect_identical_walks(graph::TorusKD(3, 9));
}

TEST(AnyTopology, MatchesCompleteGraph) {
  expect_identical_walks(graph::CompleteGraph(512));
}

TEST(AnyTopology, MatchesRgg2D) {
  expect_identical_walks(graph::Rgg2D(900, 0.08, 21));
}

TEST(AnyTopology, MatchesGnp) {
  expect_identical_walks(graph::Gnp(240, 0.08, 22));
}

TEST(AnyTopology, MatchesBa) { expect_identical_walks(graph::Ba(240, 3, 23)); }

TEST(AnyTopology, MatchesExplicitExpander) {
  // Narrower (uint32) node handles exercise the widening path.
  const graph::Graph g = graph::make_random_regular_graph(300, 6, 11);
  expect_identical_walks(graph::ExplicitTopology(g, "expander"));
}

TEST(AnyTopology, BatchedKeysMatchScalarKeys) {
  const graph::Torus2D torus(13, 29);
  const graph::AnyTopology any(torus);
  rng::Xoshiro256pp gen(7);
  std::vector<std::uint64_t> nodes(257);
  for (auto& n : nodes) {
    n = torus.random_node(gen);
  }
  std::vector<std::uint64_t> batched(nodes.size());
  any.keys(nodes, std::span<std::uint64_t>(batched));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(batched[i], torus.key(nodes[i]));
    EXPECT_EQ(any.key(nodes[i]), torus.key(nodes[i]));
  }
}

TEST(AnyTopology, NodeKeysDispatcherUsesBatchedMember) {
  const graph::Ring ring(91);
  const graph::AnyTopology any(ring);
  std::vector<std::uint64_t> nodes = {0, 1, 50, 90};
  std::vector<std::uint64_t> out(nodes.size());
  graph::node_keys(any, std::span<const std::uint64_t>(nodes),
                   std::span<std::uint64_t>(out));
  EXPECT_EQ(out, nodes);  // ring keys are the node ids themselves
}

TEST(AnyTopology, CopiesShareTheSubstrate) {
  const graph::AnyTopology original{graph::Torus2D(16, 16)};
  const graph::AnyTopology copy = original;  // value semantics
  const sim::DensityResult a =
      sim::run_density_walk(original, config(0.0), kSeed);
  const sim::DensityResult b = sim::run_density_walk(copy, config(0.0), kSeed);
  EXPECT_EQ(a.collision_counts, b.collision_counts);
  EXPECT_EQ(copy.name(), original.name());
}

TEST(AnyTopology, TargetRecoversTheConcreteType) {
  const graph::AnyTopology any{graph::Torus2D(8, 9)};
  const graph::Torus2D* torus = any.target<graph::Torus2D>();
  ASSERT_NE(torus, nullptr);
  EXPECT_EQ(torus->width(), 8u);
  EXPECT_EQ(torus->height(), 9u);
  EXPECT_EQ(any.target<graph::Ring>(), nullptr);
}

TEST(AnyTopology, AppendNeighborsEnumeratesTheBall) {
  const graph::Hypercube cube(5);
  const graph::AnyTopology any(cube);
  std::vector<std::uint64_t> neighbors;
  any.append_neighbors(0, neighbors);
  ASSERT_EQ(neighbors.size(), 5u);
  for (std::uint64_t v : neighbors) {
    EXPECT_EQ(graph::Hypercube::hamming(0, v), 1u);
  }
}

TEST(AnyTopology, PayloadKeepsBorrowedGraphAlive) {
  // Build through the registry inside a scope; the returned handle owns
  // the explicit graph via its payload, so walking after the scope ends
  // must be safe and deterministic.
  graph::AnyTopology any = scenario::Registry::built_in().make(
      "expander:d=6,n=300,seed=11");
  const graph::Graph g = graph::make_random_regular_graph(300, 6, 11);
  const graph::ExplicitTopology concrete(g, "expander");
  const sim::DensityResult a =
      sim::run_density_walk(concrete, config(0.0), kSeed);
  const sim::DensityResult b = sim::run_density_walk(any, config(0.0), kSeed);
  EXPECT_EQ(a.collision_counts, b.collision_counts);
}

TEST(AnyTopology, TrajectoriesMatchConcrete) {
  const graph::Torus2D torus(20, 20);
  const graph::AnyTopology any(torus);
  const std::vector<std::uint32_t> checkpoints = {5, 10, 30};
  const sim::TrajectoryResult concrete =
      sim::run_trajectory(torus, 40, 3, checkpoints, kSeed);
  const sim::TrajectoryResult erased =
      sim::run_trajectory(any, 40, 3, checkpoints, kSeed);
  EXPECT_EQ(concrete.estimates, erased.estimates);
  EXPECT_EQ(concrete.checkpoints, erased.checkpoints);
}

TEST(AnyTopology, TrialRunnerIsThreadCountInvariant) {
  const graph::AnyTopology any{graph::Ring(401)};
  const std::vector<double> one_thread =
      sim::collect_all_agent_estimates(any, config(0.0), kSeed, 4, 1);
  const std::vector<double> four_threads =
      sim::collect_all_agent_estimates(any, config(0.0), kSeed, 4, 4);
  EXPECT_EQ(one_thread, four_threads);
}

TEST(AnyTopology, SensingNoiseMatchesConcrete) {
  const graph::Torus2D torus(15, 15);
  const graph::AnyTopology any(torus);
  sim::DensityConfig cfg = config(0.0);
  cfg.detection_miss_probability = 0.2;
  cfg.spurious_collision_probability = 0.05;
  const sim::DensityResult concrete =
      sim::run_density_walk(torus, cfg, kSeed);
  const sim::DensityResult erased = sim::run_density_walk(any, cfg, kSeed);
  EXPECT_EQ(concrete.collision_counts, erased.collision_counts);
}

}  // namespace
}  // namespace antdense
