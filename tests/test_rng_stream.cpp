// Tests for rng::derive_stream — the sharded engine's per-shard seed
// splitter.  Two properties are contractual (sim/sharded_walk.hpp
// reproducibility rests on them): the mapping is platform-stable (pure
// 64-bit arithmetic, pinned here against golden values computed once),
// and distinct shards yield statistically independent generator
// streams (moment checks in the style of test_rng's binomial tests).
#include "rng/stream.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "stats/accumulator.hpp"

namespace antdense::rng {
namespace {

TEST(DeriveStream, PinnedGoldenValues) {
  // Golden values for the (root, shard) -> seed mapping.  These must
  // hold on every platform, compiler, and word size: a change here
  // re-goldens every sharded walk ever recorded, so treat a failure as
  // a contract break, not a test to update.
  EXPECT_EQ(derive_stream(0, 0), 0x58c5cc4ddbe2416cULL);
  EXPECT_EQ(derive_stream(0, 1), 0x0504682558d915b6ULL);
  EXPECT_EQ(derive_stream(0, 2), 0x06cd71e32ecd6032ULL);
  EXPECT_EQ(derive_stream(42, 0), 0x22708817e02279aeULL);
  EXPECT_EQ(derive_stream(42, 7), 0xc0783437e804b265ULL);
  EXPECT_EQ(derive_stream(0xDEADBEEFULL, 3), 0xb481c59ba200f92fULL);
}

TEST(DeriveStream, IsConstexpr) {
  static_assert(derive_stream(1, 2) != derive_stream(2, 1),
                "stream derivation must separate root from shard index");
  static_assert(derive_stream(5, 0) == derive_stream(5, 0));
}

TEST(DeriveStream, DistinctAcrossShardsAndRoots) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ull, 1ull, 42ull, 0xFFFFFFFFFFFFull}) {
    for (std::uint64_t shard = 0; shard < 64; ++shard) {
      seen.insert(derive_stream(root, shard));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(DeriveStream, SeparatedFromOtherDeriveSeedUsers) {
  // The domain tag keeps shard streams out of the plain derive_seed
  // index space used for trial seeds and driver tags: shard s's stream
  // must never equal derive_seed(root, s) for small s.
  for (std::uint64_t shard = 0; shard < 256; ++shard) {
    EXPECT_NE(derive_stream(99, shard), derive_seed(99, shard));
  }
}

TEST(DeriveStream, StreamMomentsAreUniform) {
  // Every shard stream must look like a fair uniform generator on its
  // own: mean of uniform_unit near 1/2, variance near 1/12.
  constexpr int kDraws = 20000;
  for (std::uint64_t shard : {0ull, 1ull, 7ull, 63ull}) {
    Xoshiro256pp gen(derive_stream(2026, shard));
    stats::Accumulator acc;
    for (int i = 0; i < kDraws; ++i) {
      acc.add(uniform_unit(gen));
    }
    EXPECT_NEAR(acc.mean(), 0.5, 4.0 * acc.standard_error()) << shard;
    EXPECT_NEAR(acc.sample_variance(), 1.0 / 12.0, 0.005) << shard;
  }
}

TEST(DeriveStream, AdjacentStreamsAreUncorrelated) {
  // Cross-shard independence: the sample correlation between adjacent
  // shards' uniform draws is ~Normal(0, 1/sqrt(n)); 4 sigma bounds it.
  constexpr int kDraws = 20000;
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    Xoshiro256pp a(derive_stream(7, shard));
    Xoshiro256pp b(derive_stream(7, shard + 1));
    double sum_ab = 0.0;
    stats::Accumulator acc_a;
    stats::Accumulator acc_b;
    for (int i = 0; i < kDraws; ++i) {
      const double xa = uniform_unit(a);
      const double xb = uniform_unit(b);
      sum_ab += xa * xb;
      acc_a.add(xa);
      acc_b.add(xb);
    }
    const double cov = sum_ab / kDraws - acc_a.mean() * acc_b.mean();
    const double corr =
        cov / std::sqrt(acc_a.sample_variance() * acc_b.sample_variance());
    EXPECT_LT(std::fabs(corr), 4.0 / std::sqrt(double(kDraws))) << shard;
  }
}

TEST(DeriveStream, BinomialCountsAcrossShardsMatchTheory) {
  // Treat "draw < p" per shard stream as one Bernoulli trial and sum
  // over shards: the total is Binomial(shards * reps, p).  This is the
  // cross-stream analogue of test_rng's binomial moment test — bias or
  // lockstep between shard streams would shift the mean or variance.
  constexpr double kP = 0.3;
  constexpr int kShards = 32;
  constexpr int kReps = 600;
  std::uint64_t successes = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    Xoshiro256pp gen(derive_stream(1234, shard));
    for (int r = 0; r < kReps; ++r) {
      successes += bernoulli(gen, kP) ? 1 : 0;
    }
  }
  const double n = double(kShards) * kReps;
  const double mean = n * kP;
  const double sd = std::sqrt(n * kP * (1.0 - kP));
  EXPECT_NEAR(double(successes), mean, 4.0 * sd);
}

}  // namespace
}  // namespace antdense::rng
