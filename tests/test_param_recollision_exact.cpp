// Property sweep (TEST_P): on every small explicit graph family, the
// Monte Carlo re-collision and equalization curves must agree with the
// exact spectral oracle at every step count — the engine-vs-math
// contract, instantiated across torus/ring/hypercube/complete/expander.
#include <gtest/gtest.h>

#include <string>

#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "spectral/exact_walk.hpp"
#include "stats/bootstrap.hpp"
#include "walk/equalization.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

struct GraphCase {
  std::string label;
  graph::Graph (*make)();
};

graph::Graph torus_5x7() { return graph::make_torus2d_graph(5, 7); }
graph::Graph torus_8x8() { return graph::make_torus2d_graph(8, 8); }
graph::Graph ring_12() { return graph::make_ring_graph(12); }
graph::Graph ring_13() { return graph::make_ring_graph(13); }
graph::Graph hypercube_5() { return graph::make_hypercube_graph(5); }
graph::Graph complete_9() { return graph::make_complete_graph(9); }
graph::Graph torus3d_4() { return graph::make_torus_kd_graph(3, 4); }
graph::Graph expander_64() {
  return graph::make_random_regular_graph(64, 6, 0xFACE);
}

class RecollisionOracle : public ::testing::TestWithParam<GraphCase> {};

TEST_P(RecollisionOracle, SampledRecollisionMatchesExact) {
  const graph::Graph g = GetParam().make();
  const graph::ExplicitTopology topo(g, GetParam().label);
  constexpr std::uint32_t kMMax = 10;
  constexpr std::uint64_t kTrials = 120000;
  const auto exact = spectral::exact_recollision_curve(g, kMMax);
  const auto sampled =
      walk::measure_recollision_curve(topo, kMMax, kTrials, 0xB0, 2);
  for (std::uint32_t m = 0; m <= kMMax; ++m) {
    const auto ci = stats::wilson_interval(sampled.hits[m], kTrials, 0.999);
    EXPECT_TRUE(exact[m] >= ci.lower - 1e-12 && exact[m] <= ci.upper + 1e-12)
        << GetParam().label << " m=" << m << " exact=" << exact[m]
        << " CI [" << ci.lower << "," << ci.upper << "]";
  }
}

TEST_P(RecollisionOracle, SampledEqualizationMatchesExact) {
  const graph::Graph g = GetParam().make();
  const graph::ExplicitTopology topo(g, GetParam().label);
  constexpr std::uint32_t kMMax = 10;
  constexpr std::uint64_t kTrials = 120000;
  const auto exact = spectral::exact_equalization_curve(g, kMMax);
  const auto sampled =
      walk::measure_equalization_curve(topo, kMMax, kTrials, 0xB1, 2);
  for (std::uint32_t m = 0; m <= kMMax; ++m) {
    const auto ci = stats::wilson_interval(sampled.hits[m], kTrials, 0.999);
    EXPECT_TRUE(exact[m] >= ci.lower - 1e-12 && exact[m] <= ci.upper + 1e-12)
        << GetParam().label << " m=" << m << " exact=" << exact[m]
        << " CI [" << ci.lower << "," << ci.upper << "]";
  }
}

TEST_P(RecollisionOracle, BipartiteParityZeroesMatchOracle) {
  // Where the oracle says exactly zero (odd steps on bipartite graphs),
  // sampling must also see exactly zero hits.
  const graph::Graph g = GetParam().make();
  const graph::ExplicitTopology topo(g, GetParam().label);
  constexpr std::uint32_t kMMax = 9;
  const auto exact = spectral::exact_equalization_curve(g, kMMax);
  const auto sampled =
      walk::measure_equalization_curve(topo, kMMax, 20000, 0xB2, 2);
  for (std::uint32_t m = 0; m <= kMMax; ++m) {
    if (exact[m] == 0.0) {
      EXPECT_EQ(sampled.hits[m], 0u) << GetParam().label << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, RecollisionOracle,
    ::testing::Values(GraphCase{"torus5x7", &torus_5x7},
                      GraphCase{"torus8x8", &torus_8x8},
                      GraphCase{"ring12", &ring_12},
                      GraphCase{"ring13", &ring_13},
                      GraphCase{"hypercube5", &hypercube_5},
                      GraphCase{"complete9", &complete_9},
                      GraphCase{"torus3d4", &torus3d_4},
                      GraphCase{"expander64", &expander_64}),
    [](const ::testing::TestParamInfo<GraphCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace antdense
