#include "graph/algos.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace antdense::graph {
namespace {

TEST(BfsDistances, PathGraphDistances) {
  const Graph g = make_path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[i], i);
  }
}

TEST(BfsDistances, UnreachableMarked) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(BfsDistances, RejectsBadSource) {
  EXPECT_THROW(bfs_distances(make_path_graph(3), 5), std::invalid_argument);
}

TEST(IsConnected, DetectsBothCases) {
  EXPECT_TRUE(is_connected(make_ring_graph(10)));
  EXPECT_FALSE(is_connected(Graph::from_edges(4, {{0, 1}, {2, 3}})));
  EXPECT_FALSE(is_connected(Graph()));
}

TEST(ConnectedComponents, Counts) {
  EXPECT_EQ(connected_component_count(make_ring_graph(5)), 1u);
  // {0,1}, {2,3}, {4}, {5} -> 4 components.
  EXPECT_EQ(connected_component_count(Graph::from_edges(6, {{0, 1}, {2, 3}})),
            4u);
}

TEST(IsBipartite, ClassicalCases) {
  EXPECT_TRUE(is_bipartite(make_ring_graph(8)));    // even cycle
  EXPECT_FALSE(is_bipartite(make_ring_graph(9)));   // odd cycle
  EXPECT_TRUE(is_bipartite(make_path_graph(7)));
  EXPECT_TRUE(is_bipartite(make_star_graph(12)));
  EXPECT_TRUE(is_bipartite(make_hypercube_graph(5)));
  EXPECT_FALSE(is_bipartite(make_complete_graph(3)));
}

TEST(IsBipartite, SelfLoopBreaksBipartiteness) {
  EXPECT_FALSE(is_bipartite(Graph::from_edges(2, {{0, 0}, {0, 1}})));
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(make_complete_graph(7)), 1u);
  EXPECT_EQ(diameter(make_ring_graph(10)), 5u);
  EXPECT_EQ(diameter(make_path_graph(6)), 5u);
  EXPECT_EQ(diameter(make_hypercube_graph(3)), 3u);
}

TEST(Diameter, RequiresConnected) {
  EXPECT_THROW(diameter(Graph::from_edges(4, {{0, 1}, {2, 3}})),
               std::invalid_argument);
}

TEST(DegreeStats, StarGraph) {
  const DegreeStats s = degree_stats(make_star_graph(5));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
  EXPECT_GT(s.variance, 0.0);
}

TEST(DegreeStats, RegularGraphZeroVariance) {
  const DegreeStats s = degree_stats(make_ring_graph(6));
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

}  // namespace
}  // namespace antdense::graph
