#include "core/quorum.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/density_estimator.hpp"
#include "graph/torus2d.hpp"

namespace antdense::core {
namespace {

using graph::Torus2D;

TEST(QuorumDetector, ValidatesParameters) {
  EXPECT_THROW(QuorumDetector(0.0, 0.5, 0.1), std::invalid_argument);
  EXPECT_THROW(QuorumDetector(1.5, 0.5, 0.1), std::invalid_argument);
  EXPECT_THROW(QuorumDetector(0.1, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(QuorumDetector(0.1, 0.5, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(QuorumDetector(0.1, 0.5, 0.1));
}

TEST(QuorumDetector, EpsilonSeparatesBands) {
  const QuorumDetector q(0.1, 0.5, 0.05);
  const double eps = q.required_epsilon();
  // Both decision directions must be safe at this epsilon:
  // high density (1+gamma)*theta shrunk by (1-eps) still >= midpoint...
  EXPECT_GE((1.0 - eps) * (1.0 + q.gamma()), 1.0 + q.gamma() / 2.0 - 1e-12);
  // ...and low density theta inflated by (1+eps) still <= midpoint.
  EXPECT_LE(1.0 + eps, 1.0 + q.gamma() / 2.0 + 1e-12);
}

TEST(QuorumDetector, DecisionRuleMidpoint) {
  const QuorumDetector q(0.2, 0.5, 0.1);
  EXPECT_TRUE(q.quorum_reached(0.26));   // above 0.2*1.25 = 0.25
  EXPECT_FALSE(q.quorum_reached(0.24));
}

TEST(QuorumDetector, RoundsGrowWithTighterGamma) {
  const QuorumDetector loose(0.1, 0.8, 0.1);
  const QuorumDetector tight(0.1, 0.2, 0.1);
  EXPECT_GT(tight.required_rounds(), loose.required_rounds());
}

TEST(QuorumDetector, EndToEndHighDensityDetected) {
  // d ~ 0.125 >= theta(1+gamma) = 0.06*2 = 0.12: quorum should fire for
  // the vast majority of agents at the theory round budget (capped).
  const Torus2D torus(32, 32);
  const QuorumDetector q(0.06, 1.0, 0.1);
  const auto t = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(q.required_rounds(), 4096));
  const auto result = estimate_density(torus, 129, t, 11);
  int fired = 0;
  for (double e : result.estimates) {
    fired += q.quorum_reached(e) ? 1 : 0;
  }
  EXPECT_GT(fired, 120) << "only " << fired << "/129 detected quorum";
}

TEST(QuorumDetector, EndToEndLowDensityRejected) {
  // d ~ 0.03 <= theta = 0.06: quorum must NOT fire for most agents.
  const Torus2D torus(32, 32);
  const QuorumDetector q(0.06, 1.0, 0.1);
  const auto t = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(q.required_rounds(), 4096));
  const auto result = estimate_density(torus, 32, t, 12);
  int fired = 0;
  for (double e : result.estimates) {
    fired += q.quorum_reached(e) ? 1 : 0;
  }
  EXPECT_LT(fired, 4) << fired << "/32 false quorums";
}

}  // namespace
}  // namespace antdense::core
