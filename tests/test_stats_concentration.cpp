#include "stats/concentration.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace antdense::stats {
namespace {

TEST(EmpiricalTail, CountsOutliersBothSides) {
  const std::vector<double> xs{0.5, 1.0, 1.0, 1.5, 2.0};
  // center 1.0, eps 0.4 -> |x-1| >= 0.4 picks 0.5, 1.5? (0.5 >= 0.4 yes,
  // 0.5 diff) ... values: |0.5-1|=0.5>=0.4, |1-1|=0, |1.5-1|=0.5>=0.4,
  // |2-1|=1>=0.4 -> 3/5.
  EXPECT_DOUBLE_EQ(empirical_tail(xs, 1.0, 0.4), 0.6);
}

TEST(EmpiricalTail, ZeroWhenAllInside) {
  const std::vector<double> xs{0.95, 1.0, 1.05};
  EXPECT_DOUBLE_EQ(empirical_tail(xs, 1.0, 0.2), 0.0);
}

TEST(EpsilonAtConfidence, FullConfidenceIsMaxDeviation) {
  const std::vector<double> xs{0.8, 1.0, 1.3};
  EXPECT_NEAR(epsilon_at_confidence(xs, 1.0, 1.0), 0.3, 1e-12);
}

TEST(EpsilonAtConfidence, MedianLevel) {
  const std::vector<double> xs{0.9, 1.0, 1.5};
  // relative deviations sorted: {0, 0.1, 0.5}; need ceil(0.5*3)=2 -> 0.1
  EXPECT_NEAR(epsilon_at_confidence(xs, 1.0, 0.5), 0.1, 1e-12);
}

TEST(EpsilonAtConfidence, MonotoneInConfidence) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(1.0 + 0.01 * i);
  }
  const double lo = epsilon_at_confidence(xs, 1.0, 0.5);
  const double hi = epsilon_at_confidence(xs, 1.0, 0.99);
  EXPECT_LT(lo, hi);
}

TEST(ChernoffTail, DecaysWithMeanAndEps) {
  EXPECT_GT(chernoff_tail(1000.0, 0.1), chernoff_tail(10000.0, 0.1));
  EXPECT_GT(chernoff_tail(1000.0, 0.1), chernoff_tail(1000.0, 0.3));
}

TEST(ChernoffTail, CappedAtOne) {
  EXPECT_DOUBLE_EQ(chernoff_tail(0.001, 0.01), 1.0);
}

TEST(ChernoffTail, MatchesFormula) {
  EXPECT_NEAR(chernoff_tail(300.0, 0.2),
              2.0 * std::exp(-0.2 * 0.2 * 300.0 / 3.0), 1e-12);
}

TEST(ChebyshevTail, MatchesFormula) {
  EXPECT_NEAR(chebyshev_tail(10.0, 0.04, 0.1), 0.04 / 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(chebyshev_tail(10.0, 400.0, 0.1), 1.0);  // capped
}

TEST(ChebyshevTail, ZeroMeanIsVacuous) {
  EXPECT_DOUBLE_EQ(chebyshev_tail(0.0, 1.0, 0.5), 1.0);
}

TEST(SubExponentialTail, MatchesLemma18Formula) {
  const double sigma_sq = 2.0;
  const double b = 0.5;
  const double delta = 3.0;
  EXPECT_NEAR(
      sub_exponential_tail(sigma_sq, b, delta),
      2.0 * std::exp(-delta * delta / (2.0 * (sigma_sq + b * delta))), 1e-12);
}

TEST(SubExponentialTail, GaussianRegimeWhenBZero) {
  // With b = 0 this is the sub-Gaussian bound 2exp(-delta^2/2sigma^2).
  EXPECT_NEAR(sub_exponential_tail(1.0, 0.0, 2.0),
              2.0 * std::exp(-2.0), 1e-12);
}

TEST(SubExponentialTail, DegenerateCases) {
  EXPECT_DOUBLE_EQ(sub_exponential_tail(0.0, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sub_exponential_tail(0.0, 0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace antdense::stats
