#include "walk/recollision.hpp"

#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"

namespace antdense::walk {
namespace {

using graph::CompleteGraph;
using graph::Hypercube;
using graph::Ring;
using graph::Torus2D;

TEST(RecollisionCurve, StartsAtProbabilityOne) {
  const Torus2D torus(32, 32);
  const auto curve = measure_recollision_curve(torus, 4, 2000, 1, 2);
  EXPECT_DOUBLE_EQ(curve.probability[0], 1.0);
  EXPECT_EQ(curve.trials, 2000u);
  EXPECT_EQ(curve.probability.size(), 5u);
}

TEST(RecollisionCurve, Torus2DExactValueAtM1) {
  // Both agents step to the same neighbor: 4 * (1/4)^2 = 1/4.
  const Torus2D torus(64, 64);
  const auto curve = measure_recollision_curve(torus, 1, 60000, 2, 2);
  EXPECT_NEAR(curve.probability[1], 0.25, 0.01);
}

TEST(RecollisionCurve, HypercubeExactValueAtM1) {
  // Both flip the same of k bits: 1/k.
  const Hypercube cube(8);
  const auto curve = measure_recollision_curve(cube, 1, 60000, 3, 2);
  EXPECT_NEAR(curve.probability[1], 1.0 / 8.0, 0.01);
}

TEST(RecollisionCurve, RingExactValueAtM1) {
  // Both step the same direction: 2 * (1/2)^2 = 1/2.
  const Ring ring(128);
  const auto curve = measure_recollision_curve(ring, 1, 60000, 4, 2);
  EXPECT_NEAR(curve.probability[1], 0.5, 0.01);
}

TEST(RecollisionCurve, CompleteGraphIsUniform) {
  // After any m >= 1, both agents are at independent near-uniform nodes:
  // P ~ 1/(A-1) (both move to one of A-1 others... empirically ~1/A).
  const CompleteGraph g(256);
  const auto curve = measure_recollision_curve(g, 3, 60000, 5, 2);
  for (std::uint32_t m = 1; m <= 3; ++m) {
    EXPECT_NEAR(curve.probability[m], 1.0 / 256.0, 0.005) << "m=" << m;
  }
}

TEST(RecollisionCurve, DecaysOnTorus) {
  const Torus2D torus(128, 128);
  const auto curve = measure_recollision_curve(torus, 64, 40000, 6, 2);
  // Compare averages of early vs late windows (even m only — odd m are
  // noisier since the relative walk is lazy-like but collisions can
  // occur at any parity here because both walkers move).
  double early = 0.0, late = 0.0;
  for (std::uint32_t m = 1; m <= 8; ++m) early += curve.probability[m];
  for (std::uint32_t m = 57; m <= 64; ++m) late += curve.probability[m];
  EXPECT_GT(early / 8.0, 4.0 * (late / 8.0));
}

TEST(RecollisionCurve, DeterministicAcrossThreadCounts) {
  const Torus2D torus(32, 32);
  const auto a = measure_recollision_curve(torus, 8, 10000, 7, 1);
  const auto b = measure_recollision_curve(torus, 8, 10000, 7, 2);
  EXPECT_EQ(a.hits, b.hits);
}

TEST(PairCollisionCounts, AtLeastZeroAndBoundedByT) {
  const Torus2D torus(64, 64);
  const auto counts = pair_collision_counts_given_first(torus, 32, 5000, 8, 2);
  ASSERT_EQ(counts.size(), 5000u);
  for (double c : counts) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 32.0);
  }
}

TEST(PairCollisionCounts, MeanGrowsLogarithmically) {
  // E[collisions in t rounds | collision at 0] = sum_m Theta(1/m) ~ log t:
  // quadrupling t should add roughly a constant, not multiply.
  const Torus2D torus(256, 256);
  const auto short_counts =
      pair_collision_counts_given_first(torus, 64, 30000, 9, 2);
  const auto long_counts =
      pair_collision_counts_given_first(torus, 256, 30000, 9, 2);
  double mean_short = 0.0, mean_long = 0.0;
  for (double c : short_counts) mean_short += c;
  for (double c : long_counts) mean_long += c;
  mean_short /= static_cast<double>(short_counts.size());
  mean_long /= static_cast<double>(long_counts.size());
  EXPECT_GT(mean_long, mean_short);
  EXPECT_LT(mean_long, 2.0 * mean_short)
      << "log growth expected, got " << mean_short << " -> " << mean_long;
}

}  // namespace
}  // namespace antdense::walk
