// Property sweep (TEST_P): monotonicity and consistency laws every
// closed-form bound must satisfy across its whole parameter grid.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"

namespace antdense::core {
namespace {

struct BoundPoint {
  std::uint32_t t;
  double d;
  double delta;
};

class BoundSweep : public ::testing::TestWithParam<BoundPoint> {};

TEST_P(BoundSweep, Theorem1EpsilonMonotoneInT) {
  const auto& p = GetParam();
  EXPECT_GT(theorem1_epsilon(p.t, p.d, p.delta),
            theorem1_epsilon(p.t * 4, p.d, p.delta));
}

TEST_P(BoundSweep, Theorem1EpsilonMonotoneInDensity) {
  const auto& p = GetParam();
  if (p.d * 4 <= 1.0) {
    EXPECT_GT(theorem1_epsilon(p.t, p.d, p.delta),
              theorem1_epsilon(p.t, p.d * 4, p.delta));
  }
}

TEST_P(BoundSweep, Theorem1EpsilonMonotoneInDelta) {
  const auto& p = GetParam();
  EXPECT_LT(theorem1_epsilon(p.t, p.d, p.delta),
            theorem1_epsilon(p.t, p.d, p.delta / 10.0));
}

TEST_P(BoundSweep, RingAlwaysNeedsMoreRoundsThanTorus) {
  const auto& p = GetParam();
  for (double eps : {0.1, 0.3}) {
    EXPECT_GE(theorem21_rounds_ring(eps, p.d, p.delta),
              theorem1_rounds(eps, p.d, p.delta) / 4)
        << "ring cannot be fundamentally cheaper";
  }
}

TEST_P(BoundSweep, BetaOrderingTorusFamilies) {
  // At every m, ring >= torus2d >= torus3d >= torus4d (slower mixing
  // means more re-collisions).
  const std::uint64_t a = 1ull << 30;
  for (std::uint32_t m : {1u, 7u, 63u, 511u}) {
    EXPECT_GE(beta_ring(m, a), beta_torus2d(m, a));
    EXPECT_GE(beta_torus2d(m, a), beta_torus_kd(m, 3, a));
    EXPECT_GE(beta_torus_kd(m, 3, a), beta_torus_kd(m, 4, a));
  }
}

TEST_P(BoundSweep, BOfTIsMonotoneAndSuperadditiveInT) {
  const auto& p = GetParam();
  const std::uint64_t a = 1ull << 30;
  EXPECT_LT(b_torus2d(p.t, a), b_torus2d(p.t * 2, a));
  EXPECT_LT(b_ring(p.t, a), b_ring(p.t * 2, a));
  // Ring mass grows much faster than torus mass.
  EXPECT_GT(b_ring(p.t * 2, a) - b_ring(p.t, a),
            b_torus2d(p.t * 2, a) - b_torus2d(p.t, a));
}

TEST_P(BoundSweep, Lemma19RecoversTheorem1WithHarmonicB) {
  const auto& p = GetParam();
  const double eps_l19 =
      lemma19_epsilon(p.t, p.d, p.delta, std::log(2.0 * p.t));
  const double eps_t1 = theorem1_epsilon(p.t, p.d, p.delta);
  EXPECT_NEAR(eps_l19, eps_t1, 1e-12);
}

TEST_P(BoundSweep, IndependentSamplingAlwaysBeatsTheorem1Budget) {
  const auto& p = GetParam();
  for (double eps : {0.1, 0.3}) {
    EXPECT_LE(independent_sampling_rounds(eps, p.d, p.delta),
              theorem1_rounds(eps, p.d, p.delta))
        << "independent sampling is the lower reference";
  }
}

TEST_P(BoundSweep, Theorem27BudgetMonotone) {
  const auto& p = GetParam();
  EXPECT_LT(theorem27_n2t(0.2, p.delta, 5.0, 4.0, 1000),
            theorem27_n2t(0.1, p.delta, 5.0, 4.0, 1000));
  EXPECT_LT(theorem27_n2t(0.2, p.delta, 5.0, 4.0, 1000),
            theorem27_n2t(0.2, p.delta, 10.0, 4.0, 1000));
  EXPECT_LT(theorem27_n2t(0.2, p.delta, 5.0, 4.0, 1000),
            theorem27_n2t(0.2, p.delta / 2.0, 5.0, 4.0, 1000));
}

// GCC 12 raises a -Wrestrict false positive (GCC bug 105329) from the
// inlined std::string concatenation in the parameter-name lambda below
// under -O2.  Scope the suppression to the instantiation so -Werror
// builds stay clean without losing the warning anywhere else.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
INSTANTIATE_TEST_SUITE_P(
    Grid, BoundSweep,
    ::testing::Values(BoundPoint{256, 0.01, 0.1},
                      BoundPoint{256, 0.1, 0.01},
                      BoundPoint{1024, 0.05, 0.1},
                      BoundPoint{1024, 0.2, 0.001},
                      BoundPoint{8192, 0.01, 0.05},
                      BoundPoint{8192, 0.2, 0.1}),
    [](const ::testing::TestParamInfo<BoundPoint>& param_info) {
      return "t" + std::to_string(param_info.param.t) + "_d" +
             std::to_string(static_cast<int>(param_info.param.d * 100)) + "_delta" +
             std::to_string(static_cast<int>(param_info.param.delta * 1000));
    });
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace antdense::core
