#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/torus2d.hpp"
#include "sim/density_sim.hpp"
#include "stats/accumulator.hpp"

namespace antdense::core {
namespace {

TEST(Calibration, ValidatesModel) {
  NoiseModel bad;
  bad.miss_probability = 1.0;
  EXPECT_THROW(calibrate_estimate(0.1, bad), std::invalid_argument);
  bad.miss_probability = 0.0;
  bad.spurious_probability = -0.1;
  EXPECT_THROW(calibrate_estimate(0.1, bad), std::invalid_argument);
  EXPECT_THROW(calibrate_estimate(-0.1, NoiseModel{}),
               std::invalid_argument);
}

TEST(Calibration, NoNoiseIsIdentity) {
  EXPECT_DOUBLE_EQ(calibrate_estimate(0.123, NoiseModel{}), 0.123);
}

TEST(Calibration, InvertsLinearModelExactly) {
  NoiseModel noise;
  noise.miss_probability = 0.4;
  noise.spurious_probability = 0.02;
  const double d = 0.1;
  const double observed = (1.0 - 0.4) * d + 0.02;
  EXPECT_NEAR(calibrate_estimate(observed, noise), d, 1e-12);
}

TEST(Calibration, ClampsAtZero) {
  NoiseModel noise;
  noise.spurious_probability = 0.1;
  EXPECT_DOUBLE_EQ(calibrate_estimate(0.05, noise), 0.0);
}

TEST(Calibration, ErrorPropagationScale) {
  NoiseModel noise;
  noise.miss_probability = 0.5;
  EXPECT_DOUBLE_EQ(calibrated_absolute_error(0.01, noise), 0.02);
}

TEST(Calibration, RecoversTruthFromNoisySimulation) {
  // End-to-end Section 6.1 loop: run the noisy engine, calibrate each
  // agent's estimate, and check the calibrated mean hits the true d.
  const graph::Torus2D torus(24, 24);
  // Note: miss and spurious push in opposite directions, so pick rates
  // that clearly do NOT cancel at this density (0.6*d + 0.01 << d).
  NoiseModel noise;
  noise.miss_probability = 0.4;
  noise.spurious_probability = 0.01;
  sim::DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 150;
  cfg.detection_miss_probability = noise.miss_probability;
  cfg.spurious_collision_probability = noise.spurious_probability;
  const double d = 59.0 / 576.0;
  stats::Accumulator raw, calibrated;
  for (std::uint64_t trial = 0; trial < 80; ++trial) {
    const auto r = sim::run_density_walk(torus, cfg, 0xCA1 + trial);
    for (double e : r.estimates()) {
      raw.add(e);
      calibrated.add(calibrate_estimate(e, noise));
    }
  }
  // Raw is biased: (1-p)d + s != d.
  EXPECT_GT(std::fabs(raw.mean() - d), 0.1 * d);
  // Calibrated is unbiased within Monte Carlo error.
  EXPECT_NEAR(calibrated.mean(), d, 5.0 * calibrated.standard_error() +
                                        0.02 * d);
}

}  // namespace
}  // namespace antdense::core
