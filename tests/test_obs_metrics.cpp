// The metrics registry (obs/metrics.hpp): striped counter exactness
// under real concurrency, histogram bucket placement and snapshot
// merges, registry registration semantics, and both export formats
// (ordered JSON, Prometheus text exposition).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace antdense::obs {
namespace {

// --- Counter ----------------------------------------------------------

TEST(ObsCounter, SumsAcrossSlotsExactly) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.increment();
  EXPECT_EQ(c.value(), 4u);
}

TEST(ObsCounter, ConcurrentAddsLoseNothing) {
  // More threads than sink slots, so several threads share a slot and
  // the relaxed fetch_add path is genuinely contended.
  Counter c;
  constexpr int kThreads = 24;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        c.add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

// --- Histogram --------------------------------------------------------

TEST(ObsHistogram, PlacesObservationsInCorrectBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // boundary lands in its own bucket (le semantics)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow -> +Inf
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
}

TEST(ObsHistogram, RejectsUnsortedOrNonFiniteBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(ObsHistogram, SnapshotMergeAddsCountsAndSums) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  a.observe(1.5);
  b.observe(1.5);
  b.observe(9.0);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 2u);
  EXPECT_EQ(merged.counts[2], 1u);
  EXPECT_DOUBLE_EQ(merged.sum, 12.5);
}

TEST(ObsHistogram, MergeRejectsMismatchedBounds) {
  Histogram a({1.0});
  Histogram b({2.0});
  HistogramSnapshot snap = a.snapshot();
  EXPECT_THROW(snap.merge(b.snapshot()), std::invalid_argument);
}

TEST(ObsHistogram, DefaultLatencyBoundsAreAscending) {
  const std::vector<double>& bounds = Histogram::default_latency_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ObsHistogram, ConcurrentObservationsLoseNothing) {
  Histogram h({0.5});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.counts[1], kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads * kPerThread));
}

// --- MetricsRegistry --------------------------------------------------

TEST(ObsRegistry, ReregistrationReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("requests_total", {{"type", "run"}});
  Counter& b = reg.counter("requests_total", {{"type", "run"}});
  EXPECT_EQ(&a, &b);
  // Different labels -> different series under the same family.
  Counter& c = reg.counter("requests_total", {{"type", "sweep"}});
  EXPECT_NE(&a, &c);
}

TEST(ObsRegistry, KindMismatchAndBadNamesThrow) {
  MetricsRegistry reg;
  reg.counter("thing_total");
  EXPECT_THROW(reg.gauge("thing_total"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("thing_total"), std::invalid_argument);
  EXPECT_THROW(reg.counter("bad name"), std::invalid_argument);
  EXPECT_THROW(reg.counter("0leading"), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
}

TEST(ObsRegistry, JsonSnapshotKeepsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("zzz_total").add(2);
  reg.gauge("aaa_level").set(-5);
  reg.histogram("lat_seconds", {1.0}).observe(0.5);
  const util::JsonValue doc = reg.to_json();
  const auto& entries = doc.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "zzz_total");
  EXPECT_EQ(entries[1].first, "aaa_level");
  EXPECT_EQ(entries[2].first, "lat_seconds");
  EXPECT_EQ(doc.find("zzz_total")->find("type")->as_string(), "counter");
  EXPECT_EQ(doc.find("zzz_total")->find("value")->as_uint(), 2u);
  EXPECT_EQ(doc.find("aaa_level")->find("value")->as_double(), -5.0);
  const util::JsonValue* hist = doc.find("lat_seconds");
  EXPECT_EQ(hist->find("count")->as_uint(), 1u);
  ASSERT_NE(hist->find("buckets"), nullptr);
  // Round-trips through the JSON parser (well-formed by construction).
  EXPECT_NO_THROW(util::JsonValue::parse(doc.dump()));
}

TEST(ObsRegistry, PrometheusExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("hits_total", {{"tier", "memory"}}, "Cache hits").add(3);
  reg.counter("hits_total", {{"tier", "disk"}}).add(1);
  reg.gauge("depth", {}, "Queue depth").set(4);
  reg.histogram("lat_seconds", {1e-6, 1e-3}, {}, "Latency").observe(1e-4);
  const std::string text = reg.to_prometheus();

  // HELP/TYPE appear once per family, before its first series.
  EXPECT_NE(text.find("# HELP hits_total Cache hits\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hits_total counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE hits_total counter"),
            text.rfind("# TYPE hits_total counter"))
      << "TYPE must not repeat for the second labeled series";
  EXPECT_NE(text.find("hits_total{tier=\"memory\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("hits_total{tier=\"disk\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 4\n"), std::string::npos);

  // Histogram series: cumulative buckets with shortest-round-trip
  // bounds, then _sum and _count, and a final +Inf bucket == _count.
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1e-06\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 0.0001\n"), std::string::npos);
}

TEST(ObsRegistry, FormatLabels) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"a", "x"}, {"b", "y"}}),
            "{a=\"x\",b=\"y\"}");
  // Label values are escaped, not trusted.
  EXPECT_EQ(format_labels({{"a", "he\"llo"}}), "{a=\"he\\\"llo\"}");
}

}  // namespace
}  // namespace antdense::obs
