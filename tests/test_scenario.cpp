// Scenario layer: Registry spec parsing (round-trip + malformed-input
// errors), ScenarioSpec validation and JSON round-trip, Theorem-1 round
// resolution through core::plan_rounds, Experiment results for all four
// workloads, and the generic BallDensityObserver pinned against the
// Torus2D-specific LocalDensityObserver in the same walk.
#include "scenario/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/density_estimator.hpp"
#include "graph/torus2d.hpp"
#include "scenario/ball_density.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/local_density.hpp"
#include "sim/walk_engine.hpp"
#include "util/json.hpp"

namespace antdense {
namespace {

using scenario::EngineMode;
using scenario::engine_mode_name;
using scenario::Experiment;
using scenario::parse_engine_mode;
using scenario::Registry;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;
using scenario::Workload;

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, BuildsAllNineFamilies) {
  const Registry& reg = Registry::built_in();
  EXPECT_EQ(reg.family_names().size(), 9u);

  EXPECT_EQ(reg.make("torus2d:12x9").num_nodes(), 108u);
  EXPECT_EQ(reg.make("torus2d:12x9").degree(), 4u);
  EXPECT_EQ(reg.make("ring:500").num_nodes(), 500u);
  EXPECT_EQ(reg.make("ring:500").degree(), 2u);
  EXPECT_EQ(reg.make("hypercube:7").num_nodes(), 128u);
  EXPECT_EQ(reg.make("hypercube:7").degree(), 7u);
  EXPECT_EQ(reg.make("toruskd:3x5").num_nodes(), 125u);
  EXPECT_EQ(reg.make("toruskd:3x5").degree(), 6u);
  EXPECT_EQ(reg.make("complete:64").num_nodes(), 64u);
  EXPECT_EQ(reg.make("complete:64").degree(), 63u);
  EXPECT_EQ(reg.make("expander:d=4,n=100,seed=3").num_nodes(), 100u);
  EXPECT_EQ(reg.make("expander:d=4,n=100,seed=3").degree(), 4u);
  // The implicit families: nominal degree is the expected/mean degree.
  EXPECT_EQ(reg.make("rgg2d:n=10000,r=0.05,seed=1").num_nodes(), 10000u);
  EXPECT_EQ(reg.make("rgg2d:n=10000,r=0.05,seed=1").degree(), 79u);  // pi r^2 n
  EXPECT_EQ(reg.make("gnp:n=300,p=0.1,seed=1").num_nodes(), 300u);
  EXPECT_EQ(reg.make("gnp:n=300,p=0.1,seed=1").degree(), 30u);  // p (n-1)
  EXPECT_EQ(reg.make("ba:n=400,d=3,seed=1").num_nodes(), 400u);
  EXPECT_EQ(reg.make("ba:n=400,d=3,seed=1").degree(), 6u);  // 2 d
}

TEST(Registry, CanonicalRoundTrips) {
  const Registry& reg = Registry::built_in();
  const char* specs[] = {"torus2d:64x64",  "ring:10000",
                         "hypercube:14",   "toruskd:3x22",
                         "complete:4096",  "expander:d=8,n=100000,seed=7",
                         "rgg2d:n=100000000,r=2e-04,seed=3",
                         "gnp:n=2000,p=0.01,seed=5",
                         "ba:n=5000,d=4,seed=9"};
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    EXPECT_EQ(reg.canonical(spec), spec);                  // already canonical
    EXPECT_EQ(reg.canonical(reg.canonical(spec)), spec);   // idempotent
  }
  // Normalization: parameter order and omitted defaults.
  EXPECT_EQ(reg.canonical("expander:n=100,d=4"), "expander:d=4,n=100,seed=1");
  EXPECT_EQ(reg.canonical("expander:seed=2,n=100,d=4"),
            "expander:d=4,n=100,seed=2");
  EXPECT_EQ(reg.canonical("rgg2d:r=0.25,n=64"), "rgg2d:n=64,r=0.25,seed=1");
  EXPECT_EQ(reg.canonical("gnp:p=0.5,n=64,seed=2"), "gnp:n=64,p=0.5,seed=2");
  EXPECT_EQ(reg.canonical("ba:d=2,n=64"), "ba:n=64,d=2,seed=1");
  // Real-valued params normalize to the shortest exact round-trip
  // spelling (std::to_chars), so different spellings of one double share
  // one canonical identity — and hence one campaign-cache key.
  EXPECT_EQ(reg.canonical("gnp:n=64,p=0.50,seed=1"), "gnp:n=64,p=0.5,seed=1");
  EXPECT_EQ(reg.canonical("rgg2d:n=64,r=2.5e-1"), "rgg2d:n=64,r=0.25,seed=1");
  EXPECT_EQ(reg.canonical("rgg2d:n=64,r=0.0002"),
            "rgg2d:n=64,r=2e-04,seed=1");
}

TEST(Registry, MalformedSpecsThrow) {
  const Registry& reg = Registry::built_in();
  const char* bad[] = {
      "",                      // no family
      "torus2d",               // missing ':'
      ":64x64",                // empty family
      "mobius:64",             // unknown family
      "torus2d:64",            // missing 'x'
      "torus2d:64x",           // missing height
      "torus2d:64x64x3",       // trailing garbage
      "ring:",                 // empty params
      "ring:abc",              // non-numeric
      "ring:-5",               // signs rejected
      "ring:1e4",              // scientific notation rejected
      "expander:d=8",          // missing n
      "expander:d=8,n=64,q=1", // unknown parameter
      "expander:d=8,seed",     // not key=value
      "rgg2d:n=64",            // missing r
      "rgg2d:n=64,r=0.1,q=2",  // unknown parameter
      "rgg2d:n=64,r=zero",     // non-numeric real
      "rgg2d:n=64,r=1.5",      // radius out of range
      "gnp:n=64,p=0",          // probability out of range
      "gnp:n=64,p=1.01",       // probability out of range
      "gnp:p=0.5",             // missing n
      "ba:n=64",               // missing d
      "ba:n=4,d=4",            // n must exceed d
      "ba:n=64,d=0",           // degenerate attachment
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(reg.make(spec), std::invalid_argument);
    EXPECT_THROW(reg.canonical(spec), std::invalid_argument);
  }
  // Domain errors surface when the topology is built; canonical() is a
  // syntax-level check and lets them through.
  EXPECT_THROW(reg.make("hypercube:0"), std::invalid_argument);
  EXPECT_EQ(reg.canonical("hypercube:0"), "hypercube:0");
}

TEST(Registry, DiagnosticsNameTheOffendingKeyAndValue) {
  // The diagnostics contract: a parse error is attributable from the
  // message alone — family, key, AND the rejected value all appear.
  const Registry& reg = Registry::built_in();
  const auto message_for = [&](const std::string& spec) {
    try {
      reg.make(spec);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const struct {
    const char* spec;
    const char* family;
    const char* fragment;
  } cases[] = {
      {"gnp:n=64,p=banana", "gnp", "p=banana"},
      {"gnp:n=sixty,p=0.5", "gnp", "n=sixty"},
      {"gnp:n=64,p=1.5", "gnp", "p=1.5"},
      {"rgg2d:n=64,r=0.1,q=2", "rgg2d", "q=2"},
      {"rgg2d:n=64,r=-0.5", "rgg2d", "r=-0.5"},
      {"ba:n=64,d=four", "ba", "d=four"},
      {"ba:d=2", "ba", "'n'"},
      {"expander:d=8,n=abc", "expander", "n=abc"},
      {"torus2d:64xtall", "torus2d", "HEIGHT=tall"},
      {"ring:1e4", "ring", "NODES=1e4"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.spec);
    const std::string msg = message_for(c.spec);
    ASSERT_FALSE(msg.empty()) << "expected " << c.spec << " to throw";
    EXPECT_NE(msg.find(c.family), std::string::npos) << msg;
    EXPECT_NE(msg.find(c.fragment), std::string::npos) << msg;
  }
}

TEST(Registry, RuntimeRegistrationExtendsTheVocabulary) {
  Registry reg;  // empty
  EXPECT_FALSE(reg.has_family("ring2"));
  reg.register_family(
      "ring2", {.make =
                    [](const std::string&) {
                      return graph::AnyTopology(graph::Torus2D(4, 4));
                    },
                .canonical =
                    [](const std::string&) {
                      return std::string("ring2:fixed");
                    },
                .grammar = "ring2:fixed"});
  EXPECT_TRUE(reg.has_family("ring2"));
  EXPECT_EQ(reg.make("ring2:whatever").num_nodes(), 16u);
  EXPECT_EQ(reg.canonical("ring2:whatever"), "ring2:fixed");
}

// ---------------------------------------------------------------------
// plan_rounds
// ---------------------------------------------------------------------

TEST(PlanRounds, AppliesTheoremOneWithTheValidityCap) {
  const double eps = 0.2, delta = 0.1, density = 0.1;
  const std::uint64_t uncapped = core::theorem1_rounds(eps, density, delta);
  ASSERT_GT(uncapped, 100u);
  // Large substrate: the theorem budget itself.
  EXPECT_EQ(core::plan_rounds(eps, delta, density, uncapped * 10), uncapped);
  // Small substrate: capped at A.
  EXPECT_EQ(core::plan_rounds(eps, delta, density, 100), 100u);
  // Degenerate: never below one round.
  EXPECT_GE(core::plan_rounds(0.9, 0.9, 0.9, 1), 1u);
}

// ---------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------

TEST(ScenarioSpec, ValidatesRanges) {
  ScenarioSpec spec;
  spec.agents = 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.rounds = 0;
  spec.eps = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.lazy_probability = 1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.property_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.seed = std::uint64_t{1} << 53;  // would round in the JSON echo
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.seed = (std::uint64_t{1} << 53) - 1;
  EXPECT_NO_THROW(spec.validate());
  spec = {};
  EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioSpec, WorkloadNamesRoundTrip) {
  for (const Workload w :
       {Workload::kDensity, Workload::kProperty, Workload::kTrajectory,
        Workload::kLocalDensity}) {
    EXPECT_EQ(scenario::parse_workload(scenario::workload_name(w)), w);
  }
  EXPECT_THROW(scenario::parse_workload("densty"), std::invalid_argument);
}

TEST(ScenarioSpec, CheckpointRoundsEndAtTheBudget) {
  ScenarioSpec spec;
  spec.checkpoints = 4;
  EXPECT_EQ(spec.checkpoint_rounds(100),
            (std::vector<std::uint32_t>{25, 50, 75, 100}));
  // More checkpoints than rounds degrades to one per round.
  spec.checkpoints = 10;
  EXPECT_EQ(spec.checkpoint_rounds(3),
            (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(ScenarioSpec, JsonRoundTrips) {
  ScenarioSpec spec;
  spec.topology = "hypercube:9";
  spec.workload = Workload::kProperty;
  spec.agents = 77;
  spec.rounds = 123;
  spec.eps = 0.25;
  spec.lazy_probability = 0.1;
  spec.trials = 3;
  spec.seed = 99;
  spec.property_fraction = 0.4;

  const ScenarioSpec back =
      ScenarioSpec::from_json(util::JsonValue::parse(spec.to_json().dump()));
  EXPECT_EQ(back.topology, spec.topology);
  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.agents, spec.agents);
  EXPECT_EQ(back.rounds, spec.rounds);
  EXPECT_DOUBLE_EQ(back.eps, spec.eps);
  EXPECT_DOUBLE_EQ(back.lazy_probability, spec.lazy_probability);
  EXPECT_EQ(back.trials, spec.trials);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_DOUBLE_EQ(back.property_fraction, spec.property_fraction);
}

TEST(ScenarioSpec, JsonRejectsUnknownKeys) {
  EXPECT_THROW(ScenarioSpec::from_json(
                   util::JsonValue::parse(R"({"agnets": 10})")),
               std::invalid_argument);
}

TEST(ScenarioSpec, LoadsFromSpecFile) {
  const std::string path = ::testing::TempDir() + "antdense_spec_test.json";
  {
    std::ofstream out(path);
    out << R"({"topology": "ring:300", "workload": "density",)"
        << R"( "agents": 25, "rounds": 40, "trials": 2})" << "\n";
  }
  const ScenarioSpec spec = ScenarioSpec::from_json_file(path);
  EXPECT_EQ(spec.topology, "ring:300");
  EXPECT_EQ(spec.agents, 25u);
  EXPECT_EQ(spec.rounds, 40u);
  EXPECT_EQ(spec.trials, 2u);
  std::remove(path.c_str());
  EXPECT_THROW(ScenarioSpec::from_json_file(path), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Identity: canonical serialization and content hashing
// ---------------------------------------------------------------------

TEST(ScenarioSpecIdentity, HashStableAcrossJsonKeyOrder) {
  const Registry& reg = Registry::built_in();
  const ScenarioSpec a = ScenarioSpec::from_json(util::JsonValue::parse(
      R"({"topology": "ring:300", "agents": 25, "rounds": 40, "seed": 9})"));
  const ScenarioSpec b = ScenarioSpec::from_json(util::JsonValue::parse(
      R"({"seed": 9, "rounds": 40, "agents": 25, "topology": "ring:300"})"));
  EXPECT_EQ(a.identity_json(reg).dump(0), b.identity_json(reg).dump(0));
  EXPECT_EQ(a.identity_hash(reg), b.identity_hash(reg));
  EXPECT_EQ(a.identity_hash(reg).size(), 16u);
}

TEST(ScenarioSpecIdentity, HashStableAcrossConstructionPaths) {
  const Registry& reg = Registry::built_in();
  // Flags, JSON, and direct field assignment describing one experiment.
  const char* argv[] = {"prog", "--topology=hypercube:9", "--agents=77",
                        "--rounds=123", "--seed=99"};
  const ScenarioSpec from_flags =
      ScenarioSpec::from_args(util::Args(5, argv));

  const ScenarioSpec from_json = ScenarioSpec::from_json(
      util::JsonValue::parse(R"({"topology": "hypercube:9", "agents": 77,)"
                             R"( "rounds": 123, "seed": 99})"));

  ScenarioSpec direct;
  direct.topology = "hypercube:9";
  direct.agents = 77;
  direct.rounds = 123;
  direct.seed = 99;

  EXPECT_EQ(from_flags.identity_hash(reg), from_json.identity_hash(reg));
  EXPECT_EQ(from_flags.identity_hash(reg), direct.identity_hash(reg));
}

TEST(ScenarioSpecIdentity, TopologySpellingCanonicalizes) {
  const Registry& reg = Registry::built_in();
  ScenarioSpec a;
  a.topology = "expander:n=100,d=4";  // param order + omitted default
  ScenarioSpec b;
  b.topology = "expander:d=4,n=100,seed=1";
  EXPECT_EQ(a.identity_hash(reg), b.identity_hash(reg));
  EXPECT_EQ(a.identity_json(reg).find("topology")->as_string(),
            "expander:d=4,n=100,seed=1");
}

TEST(ScenarioSpecIdentity, ThreadsDoNotSplitTheIdentity) {
  const Registry& reg = Registry::built_in();
  ScenarioSpec a;
  a.threads = 1;
  ScenarioSpec b = a;
  b.threads = 16;
  EXPECT_EQ(a.identity_hash(reg), b.identity_hash(reg));
  EXPECT_EQ(a.identity_json(reg).find("threads"), nullptr);
}

TEST(ScenarioSpecIdentity, SubstantiveFieldsDoSplitTheIdentity) {
  const Registry& reg = Registry::built_in();
  const ScenarioSpec base;
  for (auto mutate : {+[](ScenarioSpec& s) { s.topology = "ring:600"; },
                      +[](ScenarioSpec& s) { s.agents += 1; },
                      +[](ScenarioSpec& s) { s.rounds += 1; },
                      +[](ScenarioSpec& s) { s.seed += 1; },
                      +[](ScenarioSpec& s) { s.lazy_probability = 0.5; },
                      +[](ScenarioSpec& s) {
                        s.engine = EngineMode::kSharded;
                      },
                      +[](ScenarioSpec& s) {
                        s.workload = Workload::kProperty;
                      }}) {
    ScenarioSpec changed = base;
    mutate(changed);
    EXPECT_NE(changed.identity_hash(reg), base.identity_hash(reg));
  }
}

// ---------------------------------------------------------------------
// Engine mode: parsing, round-trip, identity
// ---------------------------------------------------------------------

TEST(EngineMode, ParsesAndNamesAllModes) {
  EXPECT_EQ(parse_engine_mode("single"), EngineMode::kSingleStream);
  EXPECT_EQ(parse_engine_mode("sharded"), EngineMode::kSharded);
  EXPECT_EQ(parse_engine_mode("vector"), EngineMode::kVector);
  EXPECT_EQ(engine_mode_name(EngineMode::kSingleStream), "single");
  EXPECT_EQ(engine_mode_name(EngineMode::kSharded), "sharded");
  EXPECT_EQ(engine_mode_name(EngineMode::kVector), "vector");
  EXPECT_THROW(parse_engine_mode("warp"), std::invalid_argument);
  EXPECT_THROW(parse_engine_mode(""), std::invalid_argument);
}

TEST(EngineMode, RoundTripsThroughFlagsAndJson) {
  const char* argv[] = {"prog", "--engine=sharded"};
  const ScenarioSpec from_flags =
      ScenarioSpec::from_args(util::Args(2, argv));
  EXPECT_EQ(from_flags.engine, EngineMode::kSharded);

  const char* argv_vec[] = {"prog", "--engine=vector"};
  const ScenarioSpec vec_flags =
      ScenarioSpec::from_args(util::Args(2, argv_vec));
  EXPECT_EQ(vec_flags.engine, EngineMode::kVector);

  const ScenarioSpec from_json = ScenarioSpec::from_json(
      util::JsonValue::parse(R"({"engine": "sharded"})"));
  EXPECT_EQ(from_json.engine, EngineMode::kSharded);

  // to_json emits the mode, and parsing it back preserves it.
  const ScenarioSpec back = ScenarioSpec::from_json(from_json.to_json());
  EXPECT_EQ(back.engine, EngineMode::kSharded);

  const ScenarioSpec vec_back = ScenarioSpec::from_json(
      util::JsonValue::parse(R"({"engine": "vector"})"));
  EXPECT_EQ(ScenarioSpec::from_json(vec_back.to_json()).engine,
            EngineMode::kVector);

  const ScenarioSpec defaulted;
  EXPECT_EQ(defaulted.engine, EngineMode::kSingleStream);
  EXPECT_EQ(defaulted.to_json().find("engine")->as_string(), "single");
}

TEST(EngineMode, IsInTheSpecVocabulary) {
  const std::vector<std::string> keys = ScenarioSpec::key_names();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "engine"), keys.end());
}

// ---------------------------------------------------------------------
// Experiment
// ---------------------------------------------------------------------

ScenarioSpec tiny_spec(const std::string& topology, Workload workload) {
  ScenarioSpec spec;
  spec.topology = topology;
  spec.workload = workload;
  spec.agents = 40;
  spec.rounds = 30;
  spec.trials = 2;
  spec.seed = 7;
  return spec;
}

TEST(Experiment, ResolvesRoundsViaPlanRounds) {
  ScenarioSpec spec = tiny_spec("torus2d:16x16", Workload::kDensity);
  spec.rounds = 0;
  spec.eps = 0.2;
  spec.delta = 0.1;
  const Experiment experiment(spec);
  const double density = 39.0 / 256.0;
  EXPECT_EQ(experiment.spec().rounds,
            core::plan_rounds(0.2, 0.1, density, 256));
  EXPECT_GT(experiment.spec().rounds, 0u);
}

TEST(Experiment, RejectsInvalidCombinations) {
  // Unknown topology fails at construction.
  EXPECT_THROW(Experiment(tiny_spec("mobius:4", Workload::kDensity)),
               std::invalid_argument);
  // Sensing noise is a density-workload knob.
  ScenarioSpec spec = tiny_spec("torus2d:16x16", Workload::kTrajectory);
  spec.trials = 1;
  spec.sensing.detection_miss = 0.5;
  EXPECT_THROW(Experiment{spec}, std::invalid_argument);
  // Trial fan-out applies to density and property only.
  spec = tiny_spec("torus2d:16x16", Workload::kLocalDensity);
  spec.trials = 2;
  EXPECT_THROW(Experiment{spec}, std::invalid_argument);
}

TEST(Experiment, DensityPoolsTrialsAndMatchesTruth) {
  const Experiment experiment(tiny_spec("torus2d:16x16", Workload::kDensity));
  const ScenarioResult result = experiment.run();
  EXPECT_EQ(result.estimates.size(), 80u);  // agents x trials
  EXPECT_EQ(result.summary.count, 80u);
  EXPECT_NEAR(result.true_value, 39.0 / 256.0, 1e-12);
  EXPECT_NEAR(result.summary.mean, result.true_value,
              5.0 * result.summary.standard_error +
                  0.05 * result.true_value);
  EXPECT_TRUE(result.checkpoints.empty());
}

TEST(Experiment, DensityIsThreadCountInvariant) {
  ScenarioSpec spec = tiny_spec("toruskd:3x7", Workload::kDensity);
  spec.trials = 4;
  spec.threads = 1;
  const ScenarioResult one = Experiment(spec).run();
  spec.threads = 4;
  const ScenarioResult four = Experiment(spec).run();
  EXPECT_EQ(one.estimates, four.estimates);
}

// Strips the wall-clock fields so two runs of the same spec compare
// bit-identically.
std::string timeless_dump(const ScenarioResult& result) {
  util::JsonValue doc = result.to_json();
  doc.erase("elapsed_seconds");
  doc.erase("elapsed_ns");
  return doc.dump(0);
}

TEST(Experiment, ProgressHooksObserveWithoutPerturbing) {
  // Round-grained tap: density with trials == 1 reports rounds.
  ScenarioSpec spec = tiny_spec("torus2d:16x16", Workload::kDensity);
  spec.trials = 1;
  const ScenarioResult plain = Experiment(spec).run();

  std::vector<std::pair<std::uint64_t, std::uint64_t>> ticks;
  scenario::ProgressHooks hooks;
  hooks.round_stride = 7;
  hooks.on_progress = [&](std::uint64_t done, std::uint64_t total) {
    ticks.emplace_back(done, total);
  };
  const ScenarioResult tapped = Experiment(spec).run(hooks);

  // The tap consumes no RNG: the hooked result is bit-identical.
  EXPECT_EQ(timeless_dump(plain), timeless_dump(tapped));
  ASSERT_FALSE(ticks.empty());
  EXPECT_EQ(ticks.back().first, spec.rounds);
  EXPECT_EQ(ticks.back().second, spec.rounds);
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_LT(ticks[i - 1].first, ticks[i].first) << "rounds are serial";
    EXPECT_EQ(ticks[i].second, spec.rounds);
  }
}

TEST(Experiment, ProgressHooksCountTrialsForFanOutWorkloads) {
  ScenarioSpec spec = tiny_spec("torus2d:16x16", Workload::kDensity);
  spec.trials = 4;
  spec.threads = 2;
  const ScenarioResult plain = Experiment(spec).run();

  std::vector<std::pair<std::uint64_t, std::uint64_t>> ticks;
  scenario::ProgressHooks hooks;
  hooks.on_progress = [&](std::uint64_t done, std::uint64_t total) {
    ticks.emplace_back(done, total);
  };
  const ScenarioResult tapped = Experiment(spec).run(hooks);

  EXPECT_EQ(timeless_dump(plain), timeless_dump(tapped));
  ASSERT_EQ(ticks.size(), 4u) << "one tick per completed trial";
  std::vector<std::uint64_t> dones;
  for (const auto& [done, total] : ticks) {
    EXPECT_EQ(total, 4u);
    dones.push_back(done);
  }
  // Worker threads tick concurrently, so order is free but the counter
  // must pass through every value once.
  std::sort(dones.begin(), dones.end());
  EXPECT_EQ(dones, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Experiment, ProgressHooksCoverEveryEngineMode) {
  for (const EngineMode mode :
       {EngineMode::kSingleStream, EngineMode::kSharded,
        EngineMode::kVector}) {
    SCOPED_TRACE(engine_mode_name(mode));
    ScenarioSpec spec = tiny_spec("torus2d:16x16", Workload::kDensity);
    spec.trials = 1;
    spec.engine = mode;
    const ScenarioResult plain = Experiment(spec).run();
    std::uint64_t last_done = 0;
    std::uint64_t last_total = 0;
    scenario::ProgressHooks hooks;
    hooks.on_progress = [&](std::uint64_t done, std::uint64_t total) {
      last_done = done;
      last_total = total;
    };
    const ScenarioResult tapped = Experiment(spec).run(hooks);
    EXPECT_EQ(timeless_dump(plain), timeless_dump(tapped));
    EXPECT_EQ(last_done, spec.rounds);
    EXPECT_EQ(last_total, spec.rounds);
  }
}

TEST(Experiment, PropertyEstimatesFrequency) {
  ScenarioSpec spec = tiny_spec("complete:256", Workload::kProperty);
  spec.property_fraction = 0.5;
  spec.rounds = 60;
  const ScenarioResult result = Experiment(spec).run();
  EXPECT_EQ(result.estimates.size(), 80u);  // agents x trials
  EXPECT_NEAR(result.true_value, 20.0 / 39.0, 1e-12);
  for (double f : result.estimates) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // On the complete graph the pooled frequency concentrates near f_P.
  EXPECT_NEAR(result.summary.mean, result.true_value, 0.1);
}

TEST(Experiment, TrajectoryRecordsAnytimeSeries) {
  ScenarioSpec spec = tiny_spec("ring:400", Workload::kTrajectory);
  spec.trials = 1;
  spec.tracked = 3;
  spec.checkpoints = 5;
  const ScenarioResult result = Experiment(spec).run();
  EXPECT_EQ(result.checkpoints.size(), 5u);
  EXPECT_EQ(result.checkpoints.back(), spec.rounds);
  ASSERT_EQ(result.series.size(), 3u);
  for (const auto& trace : result.series) {
    EXPECT_EQ(trace.size(), result.checkpoints.size());
  }
  ASSERT_EQ(result.estimates.size(), 3u);
  EXPECT_EQ(result.estimates[0], result.series[0].back());
}

TEST(Experiment, LocalDensityRunsOnEverySubstrate) {
  for (const char* topology :
       {"torus2d:12x12", "ring:144", "hypercube:7", "toruskd:3x5",
        "complete:144", "expander:d=4,n=144,seed=5",
        "rgg2d:n=144,r=0.15,seed=5", "gnp:n=144,p=0.08,seed=5",
        "ba:n=144,d=3,seed=5"}) {
    SCOPED_TRACE(topology);
    ScenarioSpec spec = tiny_spec(topology, Workload::kLocalDensity);
    spec.trials = 1;
    spec.radius = 1;
    spec.checkpoints = 3;
    const ScenarioResult result = Experiment(spec).run();
    EXPECT_EQ(result.estimates.size(), 40u);  // one per agent
    EXPECT_EQ(result.checkpoints.size(), 3u);
    for (double d : result.estimates) {
      EXPECT_GE(d, 0.0);
    }
  }
}

TEST(Experiment, ResultJsonParsesAndCarriesTheSchema) {
  const ScenarioResult result =
      Experiment(tiny_spec("hypercube:7", Workload::kDensity)).run();
  const util::JsonValue doc = util::JsonValue::parse(result.to_json().dump());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "antdense.scenario.v1");
  EXPECT_EQ(doc.find("rounds")->as_uint(), 30u);
  EXPECT_EQ(doc.find("workload")->as_string(), "density");
  EXPECT_EQ(doc.find("estimates")->items().size(), 80u);
  EXPECT_EQ(doc.find("summary")->find("count")->as_uint(), 80u);
  EXPECT_EQ(doc.find("spec")->find("topology")->as_string(), "hypercube:7");
}

// ---------------------------------------------------------------------
// BallDensityObserver vs the Torus2D-specific LocalDensityObserver
// ---------------------------------------------------------------------

TEST(BallDensity, MatchesTorus2DLocalDensityObserverExactly) {
  // Same walk, both observers: the graph-distance ball on the 2-D torus
  // is the wrap-aware L1 ball, so the generic observer must reproduce
  // the specialized one bit-for-bit, up to the specialized
  // implementation's validity limit (2 * radius < both sides).
  const graph::Torus2D torus(11, 13);
  const graph::AnyTopology any(torus);
  for (const std::uint32_t radius : {1u, 2u, 5u}) {
    SCOPED_TRACE(radius);
    const std::vector<std::uint32_t> checkpoints = {1, 4, 9};
    sim::LocalDensityObserver specialized(torus, radius, checkpoints);
    scenario::BallDensityObserver generic(any, radius, checkpoints, 35);
    sim::WalkConfig cfg;
    cfg.num_agents = 35;
    cfg.rounds = checkpoints.back();
    sim::run_walk(torus, cfg, 0xBA11u, nullptr, specialized, generic);
    EXPECT_EQ(specialized.densities(), generic.densities());
  }
}

}  // namespace
}  // namespace antdense
