// Theorem-1 envelope regression on the implicit families (fixed seeds:
// regression, not statistics).  The paper states its guarantees for
// regular graphs; random walks on irregular graphs have a degree-biased
// stationary distribution pi_v = deg(v) / 2|E|, which inflates the
// expected collision-based density estimate by the factor
// n * sum(deg^2) / (sum deg)^2 = 1 + CV^2 of the degree sequence.
//
//   - gnp and rgg2d are NEAR-regular (CV^2 of a few percent), so the
//     plain unbiasedness check holds with a small slack on top of the
//     Monte Carlo error — the same envelope the explicit substrates get.
//   - ba is heavy-tailed, so the bias is real and predictable: the
//     measured mean must track d * (1 + CV^2) computed from the exact
//     degree sequence, NOT d itself.  That looser, model-corrected
//     envelope is the right regression for scale-free substrates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/ba.hpp"
#include "graph/gnp.hpp"
#include "graph/rgg2d.hpp"
#include "sim/density_sim.hpp"
#include "sim/trial_runner.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

constexpr std::uint64_t kSeed = 0x7E012;  // fixed: regression, not stats

template <graph::Topology T>
stats::Accumulator pooled_estimates(const T& topo, std::uint32_t agents,
                                    std::uint32_t rounds,
                                    std::uint32_t trials) {
  DensityConfig cfg;
  cfg.num_agents = agents;
  cfg.rounds = rounds;
  stats::Accumulator acc;
  for (const double e :
       collect_all_agent_estimates(topo, cfg, kSeed, trials, 2)) {
    acc.add(e);
  }
  return acc;
}

TEST(ImplicitTheorem1, Rgg2DUnbiasedWithinEnvelope) {
  // Near-regular: CV^2 ~ 1/(pi r^2 n) ~ 3.5%, absorbed in the slack.
  const graph::Rgg2D rgg(2500, 0.06, 17);
  constexpr std::uint32_t kAgents = 251;
  const double d = 250.0 / 2500.0;
  const stats::Accumulator acc = pooled_estimates(rgg, kAgents, 512, 8);
  EXPECT_NEAR(acc.mean(), d, 3.0 * acc.standard_error() + 0.06 * d)
      << "mean " << acc.mean() << " vs d " << d;
}

TEST(ImplicitTheorem1, GnpUnbiasedWithinEnvelope) {
  // Near-regular: CV^2 ~ 1/((n-1) p) ~ 3.3%, absorbed in the slack.
  const graph::Gnp gnp(600, 0.05, 17);
  constexpr std::uint32_t kAgents = 61;
  const double d = 60.0 / 600.0;
  const stats::Accumulator acc = pooled_estimates(gnp, kAgents, 384, 8);
  EXPECT_NEAR(acc.mean(), d, 3.0 * acc.standard_error() + 0.06 * d)
      << "mean " << acc.mean() << " vs d " << d;
}

TEST(ImplicitTheorem1, BaTracksTheDegreeBiasedEnvelope) {
  const graph::Ba ba(400, 3, 17);
  // Exact degree sequence in one O(m) edge pass.
  std::vector<std::uint64_t> degree(400, 0);
  for (std::uint64_t j = 0; j < ba.num_edges(); ++j) {
    ++degree[ba.source_of(j)];
    ++degree[ba.target_of(j)];
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::uint64_t dv : degree) {
    sum += static_cast<double>(dv);
    sum_sq += static_cast<double>(dv) * static_cast<double>(dv);
  }
  const double inflation = 400.0 * sum_sq / (sum * sum);  // 1 + CV^2
  ASSERT_GT(inflation, 1.3) << "scale-free substrate should be heavy-tailed";

  constexpr std::uint32_t kAgents = 41;
  const double d = 40.0 / 400.0;
  const stats::Accumulator acc = pooled_estimates(ba, kAgents, 256, 6);
  // The estimate must be inflated (the naive regular-graph envelope is
  // wrong here by design) and must track the model-corrected value.
  EXPECT_GT(acc.mean(), d * (1.0 + 0.3 * (inflation - 1.0)))
      << "mean " << acc.mean() << " vs d " << d << " inflation "
      << inflation;
  EXPECT_LT(acc.mean(), d * inflation * 1.6)
      << "mean " << acc.mean() << " vs corrected "
      << d * inflation;
  EXPECT_GT(acc.mean(), d * inflation * 0.55);
}

}  // namespace
}  // namespace antdense::sim
