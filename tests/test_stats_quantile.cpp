#include "stats/quantile.hpp"

#include <gtest/gtest.h>

namespace antdense::stats {
namespace {

TEST(Quantile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Quantile, MedianOfEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Quantile, ExtremesAreMinAndMax) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, LinearInterpolationBetweenOrderStats) {
  // sorted = {10, 20, 30, 40}; q=0.25 -> pos 0.75 -> 10*0.25 + 20*0.75
  EXPECT_DOUBLE_EQ(quantile({40.0, 10.0, 30.0, 20.0}, 0.25), 17.5);
}

TEST(Quantile, RejectsBadInputs) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantiles, MultipleLevelsShareOneSort) {
  const std::vector<double> xs{4.0, 2.0, 1.0, 3.0};
  const auto qs = quantiles(xs, {0.0, 0.5, 1.0});
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_DOUBLE_EQ(qs[0], 1.0);
  EXPECT_DOUBLE_EQ(qs[1], 2.5);
  EXPECT_DOUBLE_EQ(qs[2], 4.0);
}

TEST(QuantileSorted, MonotoneInQ) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(static_cast<double>((i * 37) % 100));
  }
  std::sort(xs.begin(), xs.end());
  double prev = quantile_sorted(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile_sorted(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace antdense::stats
