#include "swarm/task_allocation.hpp"

#include <gtest/gtest.h>

#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::swarm {
namespace {

using graph::Torus2D;

TEST(SwarmConfig, Validation) {
  SwarmConfig cfg;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.group_sizes = {1};
  cfg.rounds = 10;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // < 2 agents
  cfg.group_sizes = {1, 1};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SwarmEstimation, ShapeAndGroupAssignment) {
  const Torus2D torus(16, 16);
  SwarmConfig cfg;
  cfg.group_sizes = {10, 20, 30};
  cfg.rounds = 40;
  const SwarmResult r = run_swarm_estimation(torus, cfg, 1);
  EXPECT_EQ(r.group_of_agent.size(), 60u);
  EXPECT_EQ(r.density_estimates.size(), 60u);
  EXPECT_EQ(r.group_frequency_estimates.size(), 60u);
  std::vector<int> counts(3, 0);
  for (std::uint32_t g : r.group_of_agent) {
    ASSERT_LT(g, 3u);
    ++counts[g];
  }
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 20);
  EXPECT_EQ(counts[2], 30);
  EXPECT_DOUBLE_EQ(r.true_frequencies[0], 10.0 / 60.0);
  EXPECT_DOUBLE_EQ(r.true_frequencies[2], 0.5);
}

TEST(SwarmEstimation, FrequenciesSumToOneWhenAnyEncounter) {
  const Torus2D torus(12, 12);
  SwarmConfig cfg;
  cfg.group_sizes = {20, 20};
  cfg.rounds = 100;
  const SwarmResult r = run_swarm_estimation(torus, cfg, 2);
  for (std::size_t a = 0; a < 40; ++a) {
    double sum = 0.0;
    for (double f : r.group_frequency_estimates[a]) {
      sum += f;
    }
    if (r.density_estimates[a] > 0.0) {
      EXPECT_NEAR(sum, 1.0, 1e-9) << "agent " << a;
    } else {
      EXPECT_DOUBLE_EQ(sum, 0.0);
    }
  }
}

TEST(SwarmEstimation, MeanFrequencyTracksGroupShares) {
  const Torus2D torus(24, 24);
  SwarmConfig cfg;
  cfg.group_sizes = {90, 30};  // shares 0.75 / 0.25
  cfg.rounds = 500;
  stats::Accumulator f0;
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const SwarmResult r = run_swarm_estimation(torus, cfg, 100 + trial);
    for (std::size_t a = 0; a < r.group_frequency_estimates.size(); ++a) {
      if (r.density_estimates[a] > 0.0) {
        f0.add(r.group_frequency_estimates[a][0]);
      }
    }
  }
  EXPECT_NEAR(f0.mean(), 0.75, 0.02);
}

TEST(SwarmEstimation, SingleGroupFrequencyIsOne) {
  const Torus2D torus(12, 12);
  SwarmConfig cfg;
  cfg.group_sizes = {30};
  cfg.rounds = 200;
  const SwarmResult r = run_swarm_estimation(torus, cfg, 4);
  for (std::size_t a = 0; a < 30; ++a) {
    if (r.density_estimates[a] > 0.0) {
      EXPECT_DOUBLE_EQ(r.group_frequency_estimates[a][0], 1.0);
    }
  }
}

TEST(SwarmEstimation, DeterministicInSeed) {
  const Torus2D torus(12, 12);
  SwarmConfig cfg;
  cfg.group_sizes = {8, 8};
  cfg.rounds = 30;
  const SwarmResult a = run_swarm_estimation(torus, cfg, 9);
  const SwarmResult b = run_swarm_estimation(torus, cfg, 9);
  EXPECT_EQ(a.density_estimates, b.density_estimates);
  EXPECT_EQ(a.group_of_agent, b.group_of_agent);
}

}  // namespace
}  // namespace antdense::swarm
