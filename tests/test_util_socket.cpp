// The serve layer's transport primitives (util/socket.hpp) and the
// graceful-termination plumbing (util/signal.hpp) that the daemon and
// antdense_sweep hang off them.
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "util/signal.hpp"
#include "util/socket.hpp"

namespace antdense::util {
namespace {

TEST(UtilSocket, LoopbackRoundTrip) {
  ListenSocket listener(0);
  ASSERT_NE(listener.port(), 0) << "port 0 must resolve to a real port";

  Socket client = Socket::connect_loopback(listener.port());
  Socket server = listener.accept_interruptible(-1);
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(server.valid());

  const std::string message = "hello over loopback";
  ASSERT_TRUE(client.send_all(message.data(), message.size()));
  std::string received(message.size(), '\0');
  ASSERT_TRUE(server.recv_all(received.data(), received.size()));
  EXPECT_EQ(received, message);

  // And the other direction on the same pair.
  ASSERT_TRUE(server.send_all(message.data(), message.size()));
  ASSERT_TRUE(client.recv_all(received.data(), received.size()));
  EXPECT_EQ(received, message);
}

TEST(UtilSocket, RecvAllReportsPeerClose) {
  ListenSocket listener(0);
  Socket client = Socket::connect_loopback(listener.port());
  Socket server = listener.accept_interruptible(-1);
  ASSERT_TRUE(server.valid());

  ASSERT_TRUE(client.send_all("ab", 2));
  client.close();

  char buffer[8] = {};
  // Two bytes arrive; asking for more hits EOF and reports false
  // rather than throwing — a vanished peer is normal server traffic.
  EXPECT_FALSE(server.recv_all(buffer, sizeof buffer));
}

TEST(UtilSocket, SendAllToClosedPeerReturnsFalse) {
  ListenSocket listener(0);
  Socket client = Socket::connect_loopback(listener.port());
  Socket server = listener.accept_interruptible(-1);
  ASSERT_TRUE(server.valid());
  server.close();

  // The first send may land in the kernel buffer before the RST is
  // observed; keep writing and the failure must surface as `false`
  // (never SIGPIPE, never a throw).
  const std::string chunk(4096, 'x');
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i) {
    ok = client.send_all(chunk.data(), chunk.size());
  }
  EXPECT_FALSE(ok);
}

TEST(UtilSocket, AcceptInterruptibleWokenByWakePipe) {
  ListenSocket listener(0);
  WakePipe wake;

  std::thread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    wake.poke();
  });
  // No client ever connects: only the poke can end this call.
  Socket accepted = listener.accept_interruptible(wake.read_fd());
  poker.join();
  EXPECT_FALSE(accepted.valid());

  // After draining, the pipe signals again on the next poke.
  wake.drain();
  std::thread poker2([&] { wake.poke(); });
  Socket accepted2 = listener.accept_interruptible(wake.read_fd());
  poker2.join();
  EXPECT_FALSE(accepted2.valid());
}

TEST(UtilSocket, AcceptInterruptiblePrefersRealConnection) {
  ListenSocket listener(0);
  WakePipe wake;
  Socket client = Socket::connect_loopback(listener.port());
  Socket accepted = listener.accept_interruptible(wake.read_fd());
  EXPECT_TRUE(accepted.valid());
}

TEST(UtilSignal, FlagAndWakeFdTripOnDelivery) {
  install_termination_handlers();
  reset_termination_flag_for_testing();
  ASSERT_FALSE(termination_requested());
  const int wake_fd = termination_wake_fd();
  ASSERT_GE(wake_fd, 0) << "installing the handlers creates the self-pipe";

  // Deliver SIGTERM exactly once: with the flag already set, a second
  // delivery intentionally restores default disposition and re-raises,
  // which would kill the test binary.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(termination_requested());
  EXPECT_EQ(termination_signal(), SIGTERM);
  wait_for_termination();  // already requested: must return immediately

  // The wake fd doubles as ListenSocket's interrupt: a daemon blocked
  // in accept leaves its poll when the signal lands.
  ListenSocket listener(0);
  Socket accepted = listener.accept_interruptible(wake_fd);
  EXPECT_FALSE(accepted.valid());

  reset_termination_flag_for_testing();
  EXPECT_FALSE(termination_requested());
}

}  // namespace
}  // namespace antdense::util
