#include "graph/complete.hpp"

#include <gtest/gtest.h>

#include <map>

#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

TEST(CompleteGraph, BasicProperties) {
  const CompleteGraph g(100);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.degree(), 99u);
}

TEST(CompleteGraph, RejectsTooSmall) {
  EXPECT_THROW(CompleteGraph(1), std::invalid_argument);
}

TEST(CompleteGraph, NeighborNeverSelf) {
  const CompleteGraph g(10);
  rng::Xoshiro256pp gen(11);
  for (std::uint64_t u = 0; u < 10; ++u) {
    for (int i = 0; i < 100; ++i) {
      const auto v = g.random_neighbor(u, gen);
      EXPECT_NE(v, u);
      EXPECT_LT(v, 10u);
    }
  }
}

TEST(CompleteGraph, NeighborUniformOverOthers) {
  const CompleteGraph g(5);
  rng::Xoshiro256pp gen(12);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[g.random_neighbor(2, gen)];
  }
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts.count(2), 0u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.01);
  }
}

TEST(CompleteGraph, SelfExclusionShiftCorrect) {
  // With u = 0, raw draws r >= 0 must map to r+1 (never 0).
  const CompleteGraph g(3);
  rng::Xoshiro256pp gen(13);
  for (int i = 0; i < 200; ++i) {
    const auto v = g.random_neighbor(0, gen);
    EXPECT_TRUE(v == 1 || v == 2);
  }
}

TEST(CompleteGraph, ForEachNeighborSkipsSelf) {
  const CompleteGraph g(6);
  int count = 0;
  bool saw_self = false;
  g.for_each_neighbor(3, [&](CompleteGraph::node_type v) {
    ++count;
    if (v == 3) saw_self = true;
  });
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(saw_self);
}

}  // namespace
}  // namespace antdense::graph
