#include "core/independent_sampling.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"
#include "stats/concentration.hpp"

namespace antdense::core {
namespace {

using graph::Torus2D;

TEST(IndependentSampling, ValidatesArguments) {
  const Torus2D torus(32, 32);
  EXPECT_THROW(run_independent_sampling(torus, 1, 8, 1),
               std::invalid_argument);
  EXPECT_THROW(run_independent_sampling(torus, 10, 0, 1),
               std::invalid_argument);
  // t must stay below the height (no wraparound).
  EXPECT_THROW(run_independent_sampling(torus, 10, 32, 1),
               std::invalid_argument);
  EXPECT_NO_THROW(run_independent_sampling(torus, 10, 31, 1));
}

TEST(IndependentSampling, DeterministicInSeed) {
  const Torus2D torus(64, 64);
  const auto a = run_independent_sampling(torus, 50, 32, 3);
  const auto b = run_independent_sampling(torus, 50, 32, 3);
  EXPECT_EQ(a.estimates, b.estimates);
}

TEST(IndependentSampling, UnbiasedMean) {
  const Torus2D torus(48, 48);
  constexpr std::uint32_t kAgents = 231;  // d ~ 0.1
  const double d = (kAgents - 1.0) / 2304.0;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 150; ++trial) {
    const auto r = run_independent_sampling(torus, kAgents, 40, 500 + trial);
    for (double e : r.estimates) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), d, 5.0 * acc.standard_error() + 1e-12);
}

TEST(IndependentSampling, StackedWalkersCorrectedByModT) {
  // Force all agents onto one node with both states present: agents in
  // the same state collide every round (t-fold trains) and the mod-t
  // correction must remove those trains entirely.
  // With a population of only co-located walkers + stationaries, each
  // walker sees (others in same state) every round plus stationary hits.
  // The estimate must stay finite and below 2 (Theorem 32's failure cap).
  const Torus2D torus(64, 64);
  const auto r = run_independent_sampling(torus, 200, 60, 7);
  for (double e : r.estimates) {
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 2.0);
  }
}

TEST(IndependentSampling, AccuracyMatchesChernoffShape) {
  const Torus2D torus(128, 128);
  constexpr std::uint32_t kAgents = 1639;  // d ~ 0.1
  const double d = (kAgents - 1.0) / 16384.0;
  std::vector<double> all;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const auto r =
        run_independent_sampling(torus, kAgents, 100, 900 + trial);
    all.insert(all.end(), r.estimates.begin(), r.estimates.end());
  }
  const double eps90 = stats::epsilon_at_confidence(all, d, 0.9);
  const double theory = independent_sampling_epsilon(100, d, 0.1);
  EXPECT_LT(eps90, theory) << "measured " << eps90 << " theory " << theory;
}

}  // namespace
}  // namespace antdense::core
