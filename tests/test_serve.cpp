// The serve layer: framing, the two-tier content-addressed cache
// (LRU eviction order, single-flight dedup, journal warm start), and
// the server/client round trip — including the acceptance contract that
// a daemon-served result is byte-identical to a direct Experiment run
// (modulo timing fields and the threads knob) cold, warm, and across a
// restart.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/spec.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace antdense::serve {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

util::JsonValue small_spec(std::uint64_t seed) {
  util::JsonValue spec = util::JsonValue::object();
  spec.set("topology", "ring:64");
  spec.set("workload", "density");
  spec.set("agents", std::uint64_t{12});
  spec.set("rounds", std::uint64_t{20});
  spec.set("trials", std::uint64_t{2});
  spec.set("seed", seed);
  return spec;
}

/// What the daemon caches: the direct result document minus the
/// per-invocation fields.  Mirrors the server's canonicalization, so
/// the end-to-end tests can pin byte identity against a direct run.
std::string direct_canonical(const util::JsonValue& spec_doc) {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::from_json(spec_doc);
  const scenario::ScenarioResult result =
      scenario::Experiment(spec).run();
  util::JsonValue doc = result.to_json();
  doc.erase("elapsed_seconds");
  doc.erase("elapsed_ns");
  util::JsonValue canon_spec = result.spec.to_json();
  canon_spec.erase("threads");
  doc.set("spec", std::move(canon_spec));
  return doc.dump(0);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ServeCache, EvictsInLruOrderUnderByteBudget) {
  // Budget fits two of the three ~40-byte entries (payload + id bytes).
  ResultCache cache("", /*capacity_bytes=*/100);
  const std::string payload(30, 'x');
  auto put = [&](const std::string& id) {
    cache.get_or_run(id, [&] { return payload; });
  };
  put("id-a");
  put("id-b");
  EXPECT_TRUE(cache.in_memory("id-a"));
  EXPECT_TRUE(cache.in_memory("id-b"));

  // Touch a so b is now the coldest; inserting c must evict b, not a.
  EXPECT_TRUE(cache.get_or_run("id-a", [&] { return payload; }).cache_hit);
  put("id-c");
  EXPECT_TRUE(cache.in_memory("id-a"));
  EXPECT_FALSE(cache.in_memory("id-b"));
  EXPECT_TRUE(cache.in_memory("id-c"));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 100u);

  // With no journal tier, the evicted id re-executes on demand.
  EXPECT_FALSE(cache.get_or_run("id-b", [&] { return payload; }).cache_hit);
}

TEST(ServeCache, OversizedPayloadIsServedButNotCached) {
  ResultCache cache("", /*capacity_bytes=*/16);
  const CacheOutcome out =
      cache.get_or_run("big", [] { return std::string(64, 'y'); });
  EXPECT_FALSE(out.cache_hit);
  EXPECT_FALSE(cache.in_memory("big"));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ServeCache, SingleFlightCoalescesConcurrentIdenticalRequests) {
  ResultCache cache("", 1 << 20);
  std::atomic<int> executions{0};
  std::atomic<int> waiters_started{0};
  std::atomic<bool> release{false};

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<CacheOutcome> outcomes(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      waiters_started.fetch_add(1);
      outcomes[t] = cache.get_or_run("same-id", [&]() -> std::string {
        executions.fetch_add(1);
        // Hold the execution open until every thread has had a chance
        // to pile onto the in-flight entry.
        while (!release.load()) {
          std::this_thread::yield();
        }
        return "the-answer";
      });
    });
  }
  while (waiters_started.load() < kThreads) {
    std::this_thread::yield();
  }
  // Give the stragglers a moment to reach the cache before releasing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.store(true);
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(executions.load(), 1) << "single-flight must dedup to one run";
  int cold = 0;
  for (const CacheOutcome& out : outcomes) {
    EXPECT_EQ(out.payload, "the-answer");
    cold += out.cache_hit ? 0 : 1;
  }
  EXPECT_EQ(cold, 1) << "exactly the executing request reports a miss";
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced + stats.hits_memory,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ServeCache, ExecutionErrorPropagatesAndLeavesIdUncached) {
  ResultCache cache("", 1 << 20);
  const auto boom = []() -> std::string {
    throw std::runtime_error("experiment failed");
  };
  EXPECT_THROW((void)cache.get_or_run("boom", boom), std::runtime_error);
  // The failure is not cached: the next request retries and succeeds.
  const CacheOutcome out = cache.get_or_run("boom", [] {
    return std::string("recovered");
  });
  EXPECT_FALSE(out.cache_hit);
  EXPECT_EQ(out.payload, "recovered");
}

TEST(ServeCache, JournalWarmStartServesWithoutExecuting) {
  const std::string path = temp_path("serve_cache_warm.jsonl");
  const std::string payload =
      util::JsonValue::object().set("answer", std::uint64_t{42}).dump(0);
  {
    ResultCache cache(path, 1 << 20);
    EXPECT_FALSE(cache.get_or_run("warm-id", [&] { return payload; })
                     .cache_hit);
  }
  ResultCache reborn(path, 1 << 20);
  EXPECT_EQ(reborn.stats().warm_loaded, 1u);
  EXPECT_FALSE(reborn.in_memory("warm-id")) << "tier 1 starts empty";
  const CacheOutcome out = reborn.get_or_run("warm-id", []() -> std::string {
    ADD_FAILURE() << "a journal-warm id must not re-execute";
    return "";
  });
  EXPECT_TRUE(out.cache_hit);
  EXPECT_EQ(out.payload, payload) << "disk round trip must be byte-exact";
  EXPECT_TRUE(reborn.in_memory("warm-id")) << "disk hits promote to memory";
  const CacheStats stats = reborn.stats();
  EXPECT_EQ(stats.hits_disk, 1u);
  EXPECT_EQ(stats.executions, 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// A connected loopback socket pair for protocol tests.
struct SocketPair {
  util::ListenSocket listener{0};
  util::Socket client;
  util::Socket server;

  SocketPair() {
    client = util::Socket::connect_loopback(listener.port());
    server = listener.accept_interruptible(-1);
    EXPECT_TRUE(server.valid());
  }
};

TEST(ServeProtocol, FrameRoundTrip) {
  SocketPair pair;
  const std::string payload = "{\"hello\":\"world\"}";
  ASSERT_TRUE(write_frame(pair.client, payload));
  std::string received;
  ASSERT_EQ(read_frame(pair.server, received), FrameStatus::kOk);
  EXPECT_EQ(received, payload);
  // Empty payloads frame fine too.
  ASSERT_TRUE(write_frame(pair.client, ""));
  ASSERT_EQ(read_frame(pair.server, received), FrameStatus::kOk);
  EXPECT_EQ(received, "");
}

TEST(ServeProtocol, DetectsBadMagic) {
  SocketPair pair;
  const char junk[8] = {'J', 'U', 'N', 'K', 1, 0, 0, 0};
  ASSERT_TRUE(pair.client.send_all(junk, sizeof junk));
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload), FrameStatus::kBadMagic);
}

TEST(ServeProtocol, DetectsOversizedFrame) {
  SocketPair pair;
  unsigned char header[8] = {'A', 'N', 'T', 'D', 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(pair.client.send_all(header, sizeof header));
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload), FrameStatus::kOversized);
}

TEST(ServeProtocol, DetectsTruncatedFrame) {
  SocketPair pair;
  // Declares 100 bytes, delivers 3, hangs up.
  unsigned char header[8] = {'A', 'N', 'T', 'D', 100, 0, 0, 0};
  ASSERT_TRUE(pair.client.send_all(header, sizeof header));
  ASSERT_TRUE(pair.client.send_all("abc", 3));
  pair.client.close();
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload), FrameStatus::kTruncated);
}

TEST(ServeProtocol, CleanEofIsClosedNotTruncated) {
  SocketPair pair;
  pair.client.close();
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload), FrameStatus::kClosed);
}

TEST(ServeProtocol, EnvelopeValidation) {
  EXPECT_EQ(envelope_type(make_envelope("run")), "run");
  EXPECT_THROW(envelope_type(util::JsonValue("not an object")),
               std::invalid_argument);
  util::JsonValue wrong = util::JsonValue::object();
  wrong.set("schema", "antdense.serve.v999");
  wrong.set("type", "run");
  EXPECT_THROW(envelope_type(wrong), std::invalid_argument);
  util::JsonValue untyped = util::JsonValue::object();
  untyped.set("schema", kServeSchema);
  EXPECT_THROW(envelope_type(untyped), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Server end to end
// ---------------------------------------------------------------------------

ServerOptions test_options(const std::string& journal_path = "") {
  ServerOptions options;
  options.port = 0;
  options.journal_path = journal_path;
  options.threads = 1;
  return options;
}

TEST(ServeServer, ColdResponseMatchesDirectRunAndWarmIsByteIdentical) {
  const util::JsonValue spec = small_spec(404);
  const std::string expected = direct_canonical(spec);

  Server server(test_options());
  server.start();
  Client client(server.port());

  const util::JsonValue cold = client.run(spec);
  ASSERT_EQ(envelope_type(cold), "result");
  EXPECT_FALSE(cold.find("cache_hit")->as_bool());
  EXPECT_GT(cold.find("elapsed_ns")->as_uint(), 0u);
  EXPECT_EQ(cold.find("result")->dump(0), expected)
      << "daemon-served result must equal a direct Experiment run";

  const util::JsonValue warm = client.run(spec);
  EXPECT_TRUE(warm.find("cache_hit")->as_bool());
  EXPECT_EQ(warm.find("result")->dump(0), expected)
      << "warm response must be byte-identical to cold";
  EXPECT_EQ(cold.find("id")->as_string(), warm.find("id")->as_string());

  const util::JsonValue stats = client.cache_stats();
  ASSERT_EQ(envelope_type(stats), "cache_stats");
  EXPECT_GE(stats.find("stats")->find("hits_total")->as_uint(), 1u);
  EXPECT_EQ(stats.find("stats")->find("executions")->as_uint(), 1u);

  // A different spec is a different identity: misses again.
  const util::JsonValue other = client.run(small_spec(405));
  EXPECT_FALSE(other.find("cache_hit")->as_bool());
  EXPECT_NE(other.find("id")->as_string(), cold.find("id")->as_string());
  server.stop();
}

TEST(ServeServer, StreamsProgressFramesWhileExecuting) {
  Server server(test_options());
  server.start();
  Client client(server.port());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> ticks;
  const util::JsonValue response = client.run(
      small_spec(406), /*want_progress=*/true,
      [&](std::uint64_t done, std::uint64_t total) {
        ticks.emplace_back(done, total);
      });
  ASSERT_EQ(envelope_type(response), "result");
  ASSERT_FALSE(ticks.empty()) << "an executing run must stream progress";
  for (const auto& [done, total] : ticks) {
    EXPECT_LE(done, total);
    EXPECT_GT(total, 0u);
  }
  EXPECT_EQ(ticks.back().first, ticks.back().second)
      << "the final progress frame reports completion";

  // A warm replay executes nothing, so no progress frames arrive.
  ticks.clear();
  client.run(small_spec(406), /*want_progress=*/true,
             [&](std::uint64_t done, std::uint64_t total) {
               ticks.emplace_back(done, total);
             });
  EXPECT_TRUE(ticks.empty());
  server.stop();
}

TEST(ServeServer, SurvivesMalformedAndHostileFrames) {
  Server server(test_options());
  server.start();

  {
    // Malformed JSON: one error response, connection stays usable.
    Client client(server.port());
    ASSERT_TRUE(write_frame(client.socket(), "{not json"));
    std::string payload;
    ASSERT_EQ(read_frame(client.socket(), payload), FrameStatus::kOk);
    EXPECT_EQ(envelope_type(util::JsonValue::parse(payload)), "error");
    EXPECT_EQ(envelope_type(client.server_info()), "server_info")
        << "connection must remain usable after a JSON error";
  }
  {
    // Valid JSON, wrong schema.
    Client client(server.port());
    ASSERT_TRUE(write_frame(client.socket(), "{\"schema\":\"nope\"}"));
    std::string payload;
    ASSERT_EQ(read_frame(client.socket(), payload), FrameStatus::kOk);
    EXPECT_EQ(envelope_type(util::JsonValue::parse(payload)), "error");
  }
  {
    // Valid envelope, invalid spec (unknown key): error, stays open.
    Client client(server.port());
    util::JsonValue bad_spec = util::JsonValue::object();
    bad_spec.set("no_such_key", std::uint64_t{1});
    const util::JsonValue response = client.run(bad_spec);
    EXPECT_EQ(envelope_type(response), "error");
    EXPECT_EQ(envelope_type(client.server_info()), "server_info");
  }
  {
    // Bad magic: one error frame, then the server hangs up.
    util::Socket raw = util::Socket::connect_loopback(server.port());
    ASSERT_TRUE(raw.send_all("GARBAGEGARBAGE", 14));
    std::string payload;
    ASSERT_EQ(read_frame(raw, payload), FrameStatus::kOk);
    EXPECT_EQ(envelope_type(util::JsonValue::parse(payload)), "error");
    EXPECT_EQ(read_frame(raw, payload), FrameStatus::kClosed)
        << "a framing violation must close the connection";
  }
  {
    // Oversized declared length: error + close, no allocation blowup.
    util::Socket raw = util::Socket::connect_loopback(server.port());
    unsigned char header[8] = {'A', 'N', 'T', 'D', 0xFF, 0xFF, 0xFF, 0x7F};
    ASSERT_TRUE(raw.send_all(header, sizeof header));
    std::string payload;
    ASSERT_EQ(read_frame(raw, payload), FrameStatus::kOk);
    EXPECT_EQ(envelope_type(util::JsonValue::parse(payload)), "error");
    EXPECT_EQ(read_frame(raw, payload), FrameStatus::kClosed);
  }
  {
    // Truncated frame (peer dies mid-payload): server just drops it.
    util::Socket raw = util::Socket::connect_loopback(server.port());
    unsigned char header[8] = {'A', 'N', 'T', 'D', 200, 0, 0, 0};
    ASSERT_TRUE(raw.send_all(header, sizeof header));
    ASSERT_TRUE(raw.send_all("partial", 7));
    raw.close();
  }
  // After the whole corpus, the server still answers.
  Client survivor(server.port());
  EXPECT_EQ(envelope_type(survivor.server_info()), "server_info");
  server.stop();
}

TEST(ServeServer, RestartWarmStartsFromJournal) {
  const std::string path = temp_path("serve_server_restart.jsonl");
  const util::JsonValue spec = small_spec(407);
  std::string cold_bytes;
  {
    Server server(test_options(path));
    server.start();
    Client client(server.port());
    const util::JsonValue cold = client.run(spec);
    ASSERT_EQ(envelope_type(cold), "result");
    EXPECT_FALSE(cold.find("cache_hit")->as_bool());
    cold_bytes = cold.find("result")->dump(0);
    server.stop();
  }
  {
    Server server(test_options(path));
    server.start();
    Client client(server.port());
    const util::JsonValue warm = client.run(spec);
    EXPECT_TRUE(warm.find("cache_hit")->as_bool())
        << "a restarted daemon must serve from its journal";
    EXPECT_EQ(warm.find("result")->dump(0), cold_bytes);
    const util::JsonValue stats = client.cache_stats();
    EXPECT_EQ(stats.find("stats")->find("executions")->as_uint(), 0u);
    EXPECT_EQ(stats.find("stats")->find("warm_loaded")->as_uint(), 1u);
    server.stop();
  }
  std::remove(path.c_str());
}

TEST(ServeServer, SweepRunsThroughTheSharedCache) {
  Server server(test_options());
  server.start();
  Client client(server.port());

  util::JsonValue campaign = util::JsonValue::object();
  campaign.set("name", "serve-sweep");
  campaign.set("seed", std::uint64_t{9});
  util::JsonValue base = util::JsonValue::object();
  base.set("topology", "ring:64");
  base.set("workload", "density");
  base.set("agents", std::uint64_t{12});
  base.set("rounds", std::uint64_t{20});
  campaign.set("base", base);
  util::JsonValue axis = util::JsonValue::object();
  axis.set("kind", "grid");
  axis.set("key", "agents");
  util::JsonValue values = util::JsonValue::array();
  values.push_back(std::uint64_t{12});
  values.push_back(std::uint64_t{16});
  axis.set("values", values);
  util::JsonValue axes = util::JsonValue::array();
  axes.push_back(axis);
  campaign.set("axes", axes);

  const util::JsonValue first = client.sweep(campaign);
  ASSERT_EQ(envelope_type(first), "sweep_result");
  EXPECT_EQ(first.find("planned")->as_uint(), 2u);
  EXPECT_EQ(first.find("executed")->as_uint(), 2u);
  EXPECT_EQ(first.find("cache_hits")->as_uint(), 0u);

  const util::JsonValue again = client.sweep(campaign);
  EXPECT_EQ(again.find("executed")->as_uint(), 0u);
  EXPECT_EQ(again.find("cache_hits")->as_uint(), 2u);
  for (const util::JsonValue& entry : again.find("experiments")->items()) {
    EXPECT_TRUE(entry.find("cache_hit")->as_bool());
  }
  server.stop();
}

TEST(ServeServer, MetricsEndpointExportsBothFormats) {
  Server server(test_options());
  server.start();
  Client client(server.port());
  client.run(small_spec(410));

  const util::JsonValue response = client.metrics();
  ASSERT_EQ(envelope_type(response), "metrics");

  // The JSON snapshot carries the request counter and the engine taps
  // that fired inside the executed experiment.
  const util::JsonValue* metrics = response.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const util::JsonValue* runs =
      metrics->find("antdense_serve_requests_total{type=\"run\"}");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->find("value")->as_uint(), 1u);
  const util::JsonValue* rounds =
      metrics->find("antdense_engine_rounds_total{engine=\"single\"}");
  ASSERT_NE(rounds, nullptr) << "engine taps must fire inside the daemon";
  EXPECT_GT(rounds->find("value")->as_uint(), 0u);

  // The Prometheus text is exposed alongside, same registry.
  const util::JsonValue* prom = response.find("prometheus");
  ASSERT_NE(prom, nullptr);
  EXPECT_NE(prom->as_string().find(
                "antdense_serve_requests_total{type=\"run\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom->as_string().find("# TYPE antdense_cache_hits_total counter"),
            std::string::npos);

  // Unknown request types are capped onto one label value.
  util::JsonValue bogus = make_envelope("no_such_request");
  const util::JsonValue err = client.request(bogus);
  EXPECT_EQ(envelope_type(err), "error");
  const util::JsonValue after = client.metrics();
  const util::JsonValue* unknown = after.find("metrics")->find(
      "antdense_serve_requests_total{type=\"unknown\"}");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->find("value")->as_uint(), 1u);
  server.stop();
}

TEST(ServeServer, CacheStatsReportJournalBytesThatGrow) {
  const std::string path = temp_path("serve_journal_bytes.jsonl");
  Server server(test_options(path));
  server.start();
  Client client(server.port());

  client.run(small_spec(411));
  const std::uint64_t after_one = client.cache_stats()
                                      .find("stats")
                                      ->find("journal_bytes")
                                      ->as_uint();
  EXPECT_GT(after_one, 0u) << "an executed result must hit the journal";

  // A warm hit appends nothing; a new identity grows the journal.
  client.run(small_spec(411));
  EXPECT_EQ(client.cache_stats()
                .find("stats")
                ->find("journal_bytes")
                ->as_uint(),
            after_one);
  client.run(small_spec(412));
  EXPECT_GT(client.cache_stats()
                .find("stats")
                ->find("journal_bytes")
                ->as_uint(),
            after_one);
  server.stop();
  std::remove(path.c_str());
}

TEST(ServeServer, ProgressThrottleStillDeliversTheFinalFrame) {
  // An hour-long interval suppresses every intermediate frame, but the
  // done == total frame is pinned unconditional — clients block on it.
  ServerOptions options = test_options();
  options.progress_interval_ms = 3'600'000;
  Server server(options);
  server.start();
  Client client(server.port());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> ticks;
  const util::JsonValue response = client.run(
      small_spec(413), /*want_progress=*/true,
      [&](std::uint64_t done, std::uint64_t total) {
        ticks.emplace_back(done, total);
      });
  ASSERT_EQ(envelope_type(response), "result");
  ASSERT_FALSE(ticks.empty());
  EXPECT_EQ(ticks.back().first, ticks.back().second)
      << "the completion frame must survive any throttle interval";
  // Everything else was throttled away (the first frame may slip
  // through before the interval starts counting).
  EXPECT_LE(ticks.size(), 2u);
  server.stop();
}

TEST(ServeServer, ShutdownRequestStopsWait) {
  Server server(test_options());
  server.start();
  std::thread waiter([&] { server.wait(); });
  Client client(server.port());
  const util::JsonValue ack = client.shutdown();
  EXPECT_EQ(envelope_type(ack), "shutdown_ack");
  waiter.join();  // wait() must return once shutdown is acknowledged
  server.stop();
}

}  // namespace
}  // namespace antdense::serve
