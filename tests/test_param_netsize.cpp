// Property sweep (TEST_P): Algorithm 2 across graph families — the
// collision statistic C is unbiased for 1/|V| (Lemma 28) on regular AND
// irregular graphs, and the median estimate lands near the truth once
// the Theorem-27 budget is generous.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "netsize/size_estimator.hpp"
#include "rng/splitmix64.hpp"
#include "stats/accumulator.hpp"
#include "stats/quantile.hpp"

namespace antdense::netsize {
namespace {

struct NetCase {
  std::string label;
  graph::Graph (*make)();
};

graph::Graph torus3d_6() { return graph::make_torus_kd_graph(3, 6); }
graph::Graph rr_216() { return graph::make_random_regular_graph(216, 6, 7); }
graph::Graph ba_216() { return graph::make_barabasi_albert_graph(216, 3, 7); }
graph::Graph ws_216() {
  return graph::make_watts_strogatz_graph(216, 3, 0.3, 7);
}
graph::Graph er_216() { return graph::make_erdos_renyi_graph(216, 648, 7); }

class NetsizeSweep : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetsizeSweep, CollisionStatisticUnbiased) {
  const graph::Graph g = GetParam().make();
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 150; ++trial) {
    SizeEstimationConfig cfg;
    cfg.num_walks = 32;
    cfg.rounds = 32;
    cfg.start_stationary = true;
    cfg.average_degree = g.average_degree();  // isolate Lemma 28
    const auto r =
        estimate_network_size(g, cfg, rng::derive_seed(0xA11, trial));
    acc.add(r.collision_statistic);
  }
  const double truth = 1.0 / g.num_vertices();
  EXPECT_NEAR(acc.mean(), truth, 5.0 * acc.standard_error() + 0.03 * truth)
      << GetParam().label;
}

TEST_P(NetsizeSweep, MedianEstimateNearTruth) {
  const graph::Graph g = GetParam().make();
  std::vector<double> estimates;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    SizeEstimationConfig cfg;
    cfg.num_walks = 48;
    cfg.rounds = 96;
    cfg.start_stationary = true;
    const auto r =
        estimate_network_size(g, cfg, rng::derive_seed(0xA12, trial));
    if (r.saw_collision) {
      estimates.push_back(r.size_estimate);
    }
  }
  ASSERT_GT(estimates.size(), 50u) << GetParam().label;
  EXPECT_NEAR(stats::median(estimates), 216.0, 55.0) << GetParam().label;
}

TEST_P(NetsizeSweep, EstimateScaleInvariantUnderSeed) {
  const graph::Graph g = GetParam().make();
  SizeEstimationConfig cfg;
  cfg.num_walks = 24;
  cfg.rounds = 48;
  cfg.start_stationary = true;
  const auto a = estimate_network_size(g, cfg, 99);
  const auto b = estimate_network_size(g, cfg, 99);
  EXPECT_DOUBLE_EQ(a.size_estimate, b.size_estimate) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Families, NetsizeSweep,
    ::testing::Values(NetCase{"torus3d", &torus3d_6},
                      NetCase{"random_regular", &rr_216},
                      NetCase{"barabasi_albert", &ba_216},
                      NetCase{"watts_strogatz", &ws_216},
                      NetCase{"erdos_renyi", &er_216}),
    [](const ::testing::TestParamInfo<NetCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace antdense::netsize
