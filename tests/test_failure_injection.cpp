// Robustness experiments from Section 6.1: noisy collision detection,
// non-uniform placement, and lazy/biased movement.  These tests pin the
// *documented degradation modes*: unbiased scaling under symmetric noise,
// systematic bias under asymmetric noise, and slow convergence under
// clustering.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/torus2d.hpp"
#include "sim/density_sim.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

using graph::Torus2D;

double mean_estimate(const Torus2D& torus, const DensityConfig& cfg,
                     std::uint64_t seed, int trials) {
  stats::Accumulator acc;
  for (int trial = 0; trial < trials; ++trial) {
    const DensityResult r =
        run_density_walk(torus, cfg, seed + static_cast<std::uint64_t>(trial));
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  return acc.mean();
}

TEST(FailureInjection, MissedDetectionsScaleEstimateDown) {
  // Missing each partner with probability p makes E[d~] = (1-p) d —
  // a *predictable* attenuation an ant/robot could calibrate away.
  const Torus2D torus(24, 24);
  DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 100;
  const double d = 59.0 / 576.0;
  cfg.detection_miss_probability = 0.4;
  const double mean = mean_estimate(torus, cfg, 100, 60);
  EXPECT_NEAR(mean, 0.6 * d, 0.07 * d);
}

TEST(FailureInjection, SpuriousDetectionsAddConstantOffset) {
  // Spurious rate s adds +s to the expected encounter rate.
  const Torus2D torus(24, 24);
  DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 100;
  const double d = 59.0 / 576.0;
  cfg.spurious_collision_probability = 0.05;
  const double mean = mean_estimate(torus, cfg, 200, 60);
  EXPECT_NEAR(mean, d + 0.05, 0.01);
}

TEST(FailureInjection, CombinedNoiseComposesLinearly) {
  const Torus2D torus(24, 24);
  DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 100;
  const double d = 59.0 / 576.0;
  cfg.detection_miss_probability = 0.25;
  cfg.spurious_collision_probability = 0.02;
  const double mean = mean_estimate(torus, cfg, 300, 60);
  EXPECT_NEAR(mean, 0.75 * d + 0.02, 0.012);
}

TEST(FailureInjection, ClusteredPlacementInflatesShortRunEstimates) {
  // All agents packed in an 8x8 corner of a 64x64 torus: short-horizon
  // encounter rates reflect the (high) local density, not the global d.
  const Torus2D torus(64, 64);
  DensityConfig cfg;
  cfg.num_agents = 64;
  cfg.rounds = 16;  // far too short to traverse the torus
  std::vector<Torus2D::node_type> clustered;
  for (std::uint32_t i = 0; i < 64; ++i) {
    clustered.push_back(Torus2D::pack(i % 8, i / 8));
  }
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    const DensityResult r =
        run_density_walk(torus, cfg, 400 + trial, &clustered);
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  const double global_d = 63.0 / 4096.0;
  // Local density inside the patch is ~64/64 = 1; expect estimates far
  // above global density (at least 5x).
  EXPECT_GT(acc.mean(), 5.0 * global_d);
}

TEST(FailureInjection, ClusteredPlacementHealsOverLongRuns) {
  // With enough rounds the walks spread and the encounter rate falls
  // back toward the global density (still biased upward by the early
  // rounds, so compare short vs long horizons).
  const Torus2D torus(64, 64);
  std::vector<Torus2D::node_type> clustered;
  for (std::uint32_t i = 0; i < 64; ++i) {
    clustered.push_back(Torus2D::pack(i % 8, i / 8));
  }
  auto run_mean = [&](std::uint32_t rounds, std::uint64_t seed) {
    DensityConfig cfg;
    cfg.num_agents = 64;
    cfg.rounds = rounds;
    stats::Accumulator acc;
    for (std::uint64_t trial = 0; trial < 30; ++trial) {
      const DensityResult r =
          run_density_walk(torus, cfg, seed + trial, &clustered);
      for (double e : r.estimates()) {
        acc.add(e);
      }
    }
    return acc.mean();
  };
  const double short_mean = run_mean(16, 500);
  const double long_mean = run_mean(2048, 600);
  EXPECT_LT(long_mean, short_mean / 3.0);
}

TEST(FailureInjection, LazinessSlowsButDoesNotBias) {
  const Torus2D torus(24, 24);
  DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 150;
  cfg.lazy_probability = 0.5;
  const double d = 59.0 / 576.0;
  const double mean = mean_estimate(torus, cfg, 700, 60);
  EXPECT_NEAR(mean, d, 0.06 * d);
}

}  // namespace
}  // namespace antdense::sim
