#include "core/property_frequency.hpp"

#include <gtest/gtest.h>

#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::core {
namespace {

using graph::Torus2D;

TEST(PropertyFrequency, ShapeAndTruths) {
  const Torus2D torus(16, 16);
  const auto r = estimate_property_frequency(torus, 20, 5, 50, 1);
  EXPECT_EQ(r.density_estimates.size(), 20u);
  EXPECT_EQ(r.property_estimates.size(), 20u);
  EXPECT_EQ(r.frequency_estimates.size(), 20u);
  EXPECT_DOUBLE_EQ(r.true_density, 19.0 / 256.0);
  EXPECT_DOUBLE_EQ(r.true_property_density, 5.0 / 256.0);
  EXPECT_NEAR(r.true_frequency, (5.0 / 256.0) / (19.0 / 256.0), 1e-12);
}

TEST(PropertyFrequency, ValidatesCounts) {
  const Torus2D torus(8, 8);
  EXPECT_THROW(estimate_property_frequency(torus, 1, 0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(estimate_property_frequency(torus, 5, 6, 10, 1),
               std::invalid_argument);
}

TEST(PropertyFrequency, FrequenciesInUnitInterval) {
  const Torus2D torus(16, 16);
  const auto r = estimate_property_frequency(torus, 30, 10, 200, 2);
  for (double f : r.frequency_estimates) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(PropertyFrequency, ZeroPropertyAgentsGiveZeroFrequency) {
  const Torus2D torus(16, 16);
  const auto r = estimate_property_frequency(torus, 12, 0, 100, 3);
  for (double f : r.frequency_estimates) {
    EXPECT_DOUBLE_EQ(f, 0.0);
  }
}

TEST(PropertyFrequency, AllPropertyAgentsGiveFrequencyOne) {
  const Torus2D torus(16, 16);
  const auto r = estimate_property_frequency(torus, 12, 12, 400, 4);
  for (std::size_t i = 0; i < r.frequency_estimates.size(); ++i) {
    if (r.density_estimates[i] > 0.0) {
      EXPECT_DOUBLE_EQ(r.frequency_estimates[i], 1.0);
    }
  }
}

TEST(PropertyFrequency, MeanFrequencyNearTruth) {
  // Section 5.2's claim: f~ concentrates around f_P.  Pool many runs on a
  // dense torus so most agents see collisions.
  const Torus2D torus(24, 24);
  constexpr std::uint32_t kAgents = 120;
  constexpr std::uint32_t kProperty = 30;  // f_P ~ 0.25
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const auto r = estimate_property_frequency(torus, kAgents, kProperty,
                                               600, 700 + trial);
    for (std::size_t i = 0; i < r.frequency_estimates.size(); ++i) {
      if (r.density_estimates[i] > 0.0) {
        acc.add(r.frequency_estimates[i]);
      }
    }
  }
  // Per-agent truth differs slightly by own membership; population value:
  EXPECT_NEAR(acc.mean(), 0.25, 0.02);
}

TEST(PropertyFrequency, DeterministicInSeed) {
  const Torus2D torus(16, 16);
  const auto a = estimate_property_frequency(torus, 20, 5, 50, 9);
  const auto b = estimate_property_frequency(torus, 20, 5, 50, 9);
  EXPECT_EQ(a.frequency_estimates, b.frequency_estimates);
}

}  // namespace
}  // namespace antdense::core
