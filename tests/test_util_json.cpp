#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace antdense::util {
namespace {

TEST(JsonValue, DumpsScalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(std::uint64_t{42}).dump(), "42");
  EXPECT_EQ(JsonValue(-7.0).dump(), "-7");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonValue, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonValue(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(JsonValue, ObjectsKeepInsertionOrderAndOverwrite) {
  JsonValue doc = JsonValue::object();
  doc.set("b", 1.0);
  doc.set("a", 2.0);
  doc.set("b", 3.0);  // overwrite in place, order preserved
  EXPECT_EQ(doc.dump(0), "{\"b\":3,\"a\":2}");
  ASSERT_NE(doc.find("b"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("b")->as_double(), 3.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonValue, PrettyPrintsNestedStructures) {
  JsonValue doc = JsonValue::object();
  doc.set("xs", JsonValue::array().push_back(1.0).push_back(2.0));
  EXPECT_EQ(doc.dump(2), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonValue, RejectsNonFiniteNumbers) {
  EXPECT_THROW(JsonValue(1.0 / 0.0).dump(), std::invalid_argument);
}

TEST(JsonValue, ParsesRoundTrip) {
  const std::string text =
      R"js({"name": "torus2d(8x8)", "agents": 100, "ratio": -0.25,)js"
      R"js( "ok": true, "none": null, "xs": [1, 2.5, "three"]})js";
  const JsonValue doc = JsonValue::parse(text);
  EXPECT_EQ(doc.find("name")->as_string(), "torus2d(8x8)");
  EXPECT_EQ(doc.find("agents")->as_uint(), 100u);
  EXPECT_DOUBLE_EQ(doc.find("ratio")->as_double(), -0.25);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_TRUE(doc.find("none")->is_null());
  ASSERT_EQ(doc.find("xs")->items().size(), 3u);
  EXPECT_EQ(doc.find("xs")->items()[2].as_string(), "three");
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
}

TEST(JsonValue, ParsesEscapes) {
  const JsonValue doc = JsonValue::parse(R"(["a\"b", "\u0041", "\n"])");
  EXPECT_EQ(doc.items()[0].as_string(), "a\"b");
  EXPECT_EQ(doc.items()[1].as_string(), "A");
  EXPECT_EQ(doc.items()[2].as_string(), "\n");
}

TEST(JsonValue, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1, 2",       // unterminated array
      "\"abc",       // unterminated string
      "{\"a\" 1}",   // missing colon
      "[1 2]",       // missing comma
      "tru",         // bad literal
      "01a",         // trailing garbage in number context
      "[1] []",      // trailing document
      "{\"a\": 1,}", // trailing comma (strict)
      "nan",         // not JSON
      "01",          // leading zero (RFC 8259 number grammar)
      "-.5",         // missing integer part
      "1.",          // missing fraction digits
      "1e",          // missing exponent digits
      "+5",          // explicit plus sign
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW(JsonValue::parse(text), std::invalid_argument);
  }
}

TEST(JsonParse, NestingWithinTheLimitParses) {
  // 64 containers deep is allowed; the document below nests 60.
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += '[';
  }
  for (int i = 0; i < 60; ++i) {
    text += ']';
  }
  EXPECT_NO_THROW(JsonValue::parse(text));
}

TEST(JsonParse, PathologicalNestingThrowsInsteadOfOverflowing) {
  // 100k open containers would recurse the parser off the stack without
  // the depth limit; it must surface as an ordinary parse error.
  std::string objects;
  for (int i = 0; i < 100000; ++i) {
    objects += "{\"a\":";
  }
  for (const std::string& text : {std::string(100000, '['), objects}) {
    try {
      JsonValue::parse(text);
      FAIL() << "expected a nesting-depth error";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("nesting depth"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(JsonParse, TruncatedDocumentsNameTheProblem) {
  const char* truncated[] = {
      "",
      "{\"a\": 1",
      "[1, 2",
      "{\"a\":",
      "{",
  };
  for (const char* text : truncated) {
    SCOPED_TRACE(text);
    try {
      JsonValue::parse(text);
      FAIL() << "expected a truncation error";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
  // Truncations inside string tokens keep their specific messages.
  EXPECT_THROW(JsonValue::parse("\"abc"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"abc\\"), std::invalid_argument);
}

TEST(JsonValue, TypedAccessorsRejectMismatches) {
  EXPECT_THROW(JsonValue("x").as_double(), std::invalid_argument);
  EXPECT_THROW(JsonValue(1.5).as_uint(), std::invalid_argument);
  EXPECT_THROW(JsonValue(-1.0).as_uint(), std::invalid_argument);
  EXPECT_THROW(JsonValue(1.0).as_string(), std::invalid_argument);
  EXPECT_THROW(JsonValue().items(), std::invalid_argument);
  EXPECT_THROW(JsonValue("x").entries(), std::invalid_argument);
}

}  // namespace
}  // namespace antdense::util
