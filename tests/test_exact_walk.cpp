#include "spectral/exact_walk.hpp"

#include <gtest/gtest.h>

#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "stats/bootstrap.hpp"
#include "walk/equalization.hpp"
#include "walk/recollision.hpp"

namespace antdense::spectral {
namespace {

using graph::Graph;

TEST(WalkDistribution, ZeroStepsIsPointMass) {
  const Graph g = graph::make_ring_graph(6);
  const auto dist = walk_distribution(g, 2, 0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
}

TEST(ExactEqualization, RingTwoSteps) {
  const Graph g = graph::make_ring_graph(10);
  EXPECT_NEAR(exact_equalization_probability(g, 0, 2), 0.5, 1e-12);
  EXPECT_NEAR(exact_equalization_probability(g, 0, 1), 0.0, 1e-12);
}

TEST(ExactEqualization, Torus2DKnownValues) {
  const Graph g = graph::make_torus2d_graph(9, 9);
  // m=2: 1/4.  m=4: 36/256 (see test_equalization derivation).
  EXPECT_NEAR(exact_equalization_probability(g, 0, 2), 0.25, 1e-12);
  EXPECT_NEAR(exact_equalization_probability(g, 0, 4), 36.0 / 256.0, 1e-12);
}

TEST(ExactRecollision, Torus2DOneStep) {
  const Graph g = graph::make_torus2d_graph(9, 9);
  // Two walkers from one node land together iff same neighbor: 1/4.
  EXPECT_NEAR(exact_recollision_probability(g, 0, 1), 0.25, 1e-12);
}

TEST(ExactRecollision, CompleteGraphValue) {
  const Graph g = graph::make_complete_graph(5);
  // Both uniform over the 4 others: sum over 4 nodes of (1/4)^2 = 1/4.
  EXPECT_NEAR(exact_recollision_probability(g, 0, 1), 0.25, 1e-12);
}

TEST(ExactCurves, VertexTransitivityMakesAverageMatchSingleStart) {
  const Graph g = graph::make_torus2d_graph(7, 7);
  const auto curve = exact_recollision_curve(g, 6);
  for (std::uint32_t m = 0; m <= 6; ++m) {
    EXPECT_NEAR(curve[m], exact_recollision_probability(g, 0, m), 1e-12)
        << "m=" << m;
  }
}

TEST(ExactCurves, MonteCarloEqualizationMatchesOracle) {
  const Graph g = graph::make_torus2d_graph(8, 8);
  const graph::ExplicitTopology topo(g);
  constexpr std::uint32_t kMMax = 12;
  constexpr std::uint64_t kTrials = 150000;
  const auto exact = exact_equalization_curve(g, kMMax);
  const auto sampled =
      walk::measure_equalization_curve(topo, kMMax, kTrials, 0xA1, 2);
  for (std::uint32_t m = 0; m <= kMMax; ++m) {
    const auto ci =
        stats::wilson_interval(sampled.hits[m], kTrials, 0.999);
    EXPECT_TRUE(exact[m] >= ci.lower - 1e-12 && exact[m] <= ci.upper + 1e-12)
        << "m=" << m << " exact=" << exact[m] << " sampled CI ["
        << ci.lower << "," << ci.upper << "]";
  }
}

TEST(ExactCurves, MonteCarloRecollisionMatchesOracle) {
  const Graph g = graph::make_torus2d_graph(8, 8);
  const graph::ExplicitTopology topo(g);
  constexpr std::uint32_t kMMax = 12;
  constexpr std::uint64_t kTrials = 150000;
  const auto exact = exact_recollision_curve(g, kMMax);
  const auto sampled =
      walk::measure_recollision_curve(topo, kMMax, kTrials, 0xA2, 2);
  for (std::uint32_t m = 0; m <= kMMax; ++m) {
    const auto ci =
        stats::wilson_interval(sampled.hits[m], kTrials, 0.999);
    EXPECT_TRUE(exact[m] >= ci.lower - 1e-12 && exact[m] <= ci.upper + 1e-12)
        << "m=" << m << " exact=" << exact[m] << " sampled CI ["
        << ci.lower << "," << ci.upper << "]";
  }
}

TEST(ExactCurves, HypercubeOracleMatchesSampling) {
  const Graph g = graph::make_hypercube_graph(6);
  const graph::ExplicitTopology topo(g);
  constexpr std::uint32_t kMMax = 8;
  constexpr std::uint64_t kTrials = 100000;
  const auto exact = exact_recollision_curve(g, kMMax);
  const auto sampled =
      walk::measure_recollision_curve(topo, kMMax, kTrials, 0xA3, 2);
  for (std::uint32_t m = 1; m <= kMMax; ++m) {
    const auto ci = stats::wilson_interval(sampled.hits[m], kTrials, 0.999);
    EXPECT_TRUE(exact[m] >= ci.lower && exact[m] <= ci.upper) << "m=" << m;
  }
}

TEST(ExactRecollision, DecreasesWithM) {
  const Graph g = graph::make_torus2d_graph(15, 15);
  double prev = 1.0;
  for (std::uint32_t m = 1; m <= 10; ++m) {
    const double p = exact_recollision_probability(g, 0, m);
    EXPECT_LE(p, prev + 1e-12) << "m=" << m;
    prev = p;
  }
}

}  // namespace
}  // namespace antdense::spectral
