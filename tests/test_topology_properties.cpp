// Cross-topology property sweep: the invariants every Topology must
// satisfy (typed TEST suite over all five lattice models plus the
// explicit adapter).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

// Fixture factory per topology type: builds a small instance (~64-1024
// nodes) for the shared property checks.
template <typename T>
struct Maker;

template <>
struct Maker<Torus2D> {
  static Torus2D make() { return Torus2D(16, 16); }
};
template <>
struct Maker<Ring> {
  static Ring make() { return Ring(64); }
};
template <>
struct Maker<TorusKD> {
  static TorusKD make() { return TorusKD(3, 6); }
};
template <>
struct Maker<Hypercube> {
  static Hypercube make() { return Hypercube(8); }
};
template <>
struct Maker<CompleteGraph> {
  static CompleteGraph make() { return CompleteGraph(64); }
};

template <typename T>
class TopologyProperties : public ::testing::Test {
 protected:
  TopologyProperties() : topo_(Maker<T>::make()) {}
  T topo_;
};

using AllTopologies =
    ::testing::Types<Torus2D, Ring, TorusKD, Hypercube, CompleteGraph>;
TYPED_TEST_SUITE(TopologyProperties, AllTopologies);

TYPED_TEST(TopologyProperties, KeysStayInRangeAlongWalks) {
  rng::Xoshiro256pp gen(101);
  auto u = this->topo_.random_node(gen);
  for (int i = 0; i < 2000; ++i) {
    u = this->topo_.random_neighbor(u, gen);
    EXPECT_LT(this->topo_.key(u), this->topo_.num_nodes());
  }
}

TYPED_TEST(TopologyProperties, RandomNodeKeysUniform) {
  rng::Xoshiro256pp gen(102);
  const auto n = this->topo_.num_nodes();
  std::map<std::uint64_t, int> counts;
  const int draws = static_cast<int>(n) * 100;
  for (int i = 0; i < draws; ++i) {
    ++counts[this->topo_.key(this->topo_.random_node(gen))];
  }
  // Every node should appear, each within 5 sigma of uniform.
  EXPECT_EQ(counts.size(), n);
  const double expect = static_cast<double>(draws) / static_cast<double>(n);
  const double tolerance = 5.0 * std::sqrt(expect);
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), expect, tolerance) << "key " << key;
  }
}

TYPED_TEST(TopologyProperties, NeighborDrawsCoverExactlyDegreeNodes) {
  rng::Xoshiro256pp gen(103);
  const auto u = this->topo_.random_node(gen);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    seen.insert(this->topo_.key(this->topo_.random_neighbor(u, gen)));
  }
  EXPECT_EQ(seen.size(), this->topo_.degree());
}

TYPED_TEST(TopologyProperties, ForEachNeighborMatchesRandomSupport) {
  rng::Xoshiro256pp gen(104);
  const auto u = this->topo_.random_node(gen);
  std::set<std::uint64_t> enumerated;
  this->topo_.for_each_neighbor(
      u, [&](const auto& v) { enumerated.insert(this->topo_.key(v)); });
  std::set<std::uint64_t> sampled;
  for (int i = 0; i < 5000; ++i) {
    sampled.insert(this->topo_.key(this->topo_.random_neighbor(u, gen)));
  }
  EXPECT_EQ(enumerated, sampled);
}

TYPED_TEST(TopologyProperties, NameIsNonEmpty) {
  EXPECT_FALSE(this->topo_.name().empty());
}

TYPED_TEST(TopologyProperties, StationaryUniformityAfterManySteps) {
  // Regularity keeps a uniformly-started walker uniform at every round
  // (the paper's Lemma 2 precondition).  Check the marginal at round 13.
  rng::Xoshiro256pp gen(105);
  const auto n = this->topo_.num_nodes();
  std::map<std::uint64_t, int> counts;
  const int trials = static_cast<int>(n) * 100;
  for (int trial = 0; trial < trials; ++trial) {
    auto u = this->topo_.random_node(gen);
    for (int s = 0; s < 13; ++s) {
      u = this->topo_.random_neighbor(u, gen);
    }
    ++counts[this->topo_.key(u)];
  }
  const double expect =
      static_cast<double>(trials) / static_cast<double>(n);
  const double tolerance = 5.0 * std::sqrt(expect);
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), expect, tolerance) << "key " << key;
  }
}

// ExplicitTopology gets the same checks via a random regular graph.
TEST(ExplicitTopologyProperties, WalksStayInRangeAndCoverNeighbors) {
  const Graph g = make_random_regular_graph(128, 6, 2024);
  const ExplicitTopology topo(g, "rr");
  rng::Xoshiro256pp gen(106);
  auto u = topo.random_node(gen);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    u = topo.random_neighbor(u, gen);
    EXPECT_LT(topo.key(u), topo.num_nodes());
  }
  for (int i = 0; i < 3000; ++i) {
    seen.insert(topo.key(topo.random_neighbor(u, gen)));
  }
  EXPECT_EQ(seen.size(), topo.degree());
}

}  // namespace
}  // namespace antdense::graph
