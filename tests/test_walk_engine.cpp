// Differential tests pinning the WalkEngine's compatibility contract:
// the observer-based engine must reproduce the frozen pre-engine loops
// (sim/legacy_reference.hpp) bit-for-bit at fixed seeds in every mode
// except detection-miss, whose stream was deliberately re-goldened when
// the per-partner Bernoulli loop became one binomial draw (that path is
// pinned statistically and at its deterministic edge cases instead).
// Also covers the batched topology API (same generator stream as
// sequential stepping) and the engine-only observers.
#include "sim/walk_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "graph/biased_torus2d.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "sim/density_sim.hpp"
#include "sim/legacy_reference.hpp"
#include "sim/local_density.hpp"
#include "sim/trajectory.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

using graph::Hypercube;
using graph::Ring;
using graph::Torus2D;

DensityConfig base_config() {
  DensityConfig cfg;
  cfg.num_agents = 40;
  cfg.rounds = 120;
  return cfg;
}

template <graph::Topology T>
void expect_density_walk_matches_legacy(const T& topo,
                                        const DensityConfig& cfg,
                                        std::uint64_t seed) {
  const DensityResult engine = run_density_walk(topo, cfg, seed);
  const DensityResult reference = legacy::run_density_walk(topo, cfg, seed);
  EXPECT_EQ(engine.collision_counts, reference.collision_counts)
      << "on " << topo.name() << " seed " << seed;
  EXPECT_EQ(engine.rounds, reference.rounds);
  EXPECT_EQ(engine.num_nodes, reference.num_nodes);
}

TEST(EngineEquivalence, DensityWalkMatchesLegacyAcrossTopologies) {
  const DensityConfig cfg = base_config();
  for (std::uint64_t seed : {1ull, 77ull, 0xDEADull}) {
    expect_density_walk_matches_legacy(Ring(512), cfg, seed);
    expect_density_walk_matches_legacy(Torus2D(24, 24), cfg, seed);
    expect_density_walk_matches_legacy(Hypercube(10), cfg, seed);
    expect_density_walk_matches_legacy(graph::TorusKD(3, 8), cfg, seed);
    expect_density_walk_matches_legacy(graph::CompleteGraph(100), cfg, seed);
  }
}

TEST(EngineEquivalence, DensityWalkMatchesLegacyOnExpander) {
  const graph::Graph g = graph::make_random_regular_graph(128, 4, 99);
  const graph::ExplicitTopology topo(g, "rr");
  expect_density_walk_matches_legacy(topo, base_config(), 5);
}

TEST(EngineEquivalence, DensityWalkMatchesLegacyOnFallbackTopology) {
  // BiasedTorus2D has no batched member: the engine's generic fallback
  // must still match the legacy per-agent loop.
  const auto topo = graph::BiasedTorus2D::with_drift(20, 20, 0.1);
  expect_density_walk_matches_legacy(topo, base_config(), 13);
}

TEST(EngineEquivalence, LazyWalkMatchesLegacy) {
  DensityConfig cfg = base_config();
  cfg.lazy_probability = 0.3;
  expect_density_walk_matches_legacy(Torus2D(16, 16), cfg, 21);
  expect_density_walk_matches_legacy(Ring(256), cfg, 22);
}

TEST(EngineEquivalence, SpuriousWalkMatchesLegacy) {
  // Spurious detections stay one Bernoulli draw per agent, so even this
  // noisy mode is stream-identical to the legacy loop.
  DensityConfig cfg = base_config();
  cfg.spurious_collision_probability = 0.2;
  expect_density_walk_matches_legacy(Torus2D(16, 16), cfg, 31);
  expect_density_walk_matches_legacy(Hypercube(9), cfg, 32);
}

TEST(EngineEquivalence, InitialPositionsMatchLegacy) {
  const Torus2D torus(16, 16);
  DensityConfig cfg = base_config();
  std::vector<Torus2D::node_type> start;
  for (std::uint32_t i = 0; i < cfg.num_agents; ++i) {
    start.push_back(Torus2D::pack(i % 4, i / 16));
  }
  const DensityResult engine = run_density_walk(torus, cfg, 41, &start);
  const DensityResult reference =
      legacy::run_density_walk(torus, cfg, 41, &start);
  EXPECT_EQ(engine.collision_counts, reference.collision_counts);
}

TEST(EngineEquivalence, PropertyWalkMatchesLegacy) {
  DensityConfig cfg = base_config();
  std::vector<bool> has_property(cfg.num_agents, false);
  for (std::uint32_t i = 0; i < cfg.num_agents; i += 3) {
    has_property[i] = true;
  }
  for (std::uint64_t seed : {2ull, 1234ull}) {
    for (int topo_case = 0; topo_case < 3; ++topo_case) {
      auto check = [&](const auto& topo) {
        const PropertyResult engine =
            run_property_walk(topo, cfg, has_property, seed);
        const PropertyResult reference =
            legacy::run_property_walk(topo, cfg, has_property, seed);
        EXPECT_EQ(engine.total_counts, reference.total_counts)
            << topo.name() << " seed " << seed;
        EXPECT_EQ(engine.property_counts, reference.property_counts)
            << topo.name() << " seed " << seed;
      };
      if (topo_case == 0) {
        check(Ring(300));
      } else if (topo_case == 1) {
        check(Torus2D(20, 20));
      } else {
        check(Hypercube(10));
      }
    }
  }
}

// --- The re-goldened detection-miss path ------------------------------

TEST(EngineEquivalence, MissPathIsDeterministicInSeed) {
  const Torus2D torus(12, 12);
  DensityConfig cfg = base_config();
  cfg.detection_miss_probability = 0.4;
  const DensityResult a = run_density_walk(torus, cfg, 7);
  const DensityResult b = run_density_walk(torus, cfg, 7);
  EXPECT_EQ(a.collision_counts, b.collision_counts);
}

TEST(EngineEquivalence, MissPathKeepsLegacyAttenuation) {
  // E[d~] = (1-p) d must survive the binomial re-golden.  Pins the
  // distribution the legacy Bernoulli loop realized.
  const Torus2D torus(16, 16);
  DensityConfig cfg;
  cfg.num_agents = 50;
  cfg.rounds = 80;
  cfg.detection_miss_probability = 0.35;
  const double d = 49.0 / 256.0;
  stats::Accumulator engine_acc;
  stats::Accumulator legacy_acc;
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    for (double e : run_density_walk(torus, cfg, 900 + trial).estimates()) {
      engine_acc.add(e);
    }
    for (double e :
         legacy::run_density_walk(torus, cfg, 900 + trial).estimates()) {
      legacy_acc.add(e);
    }
  }
  EXPECT_NEAR(engine_acc.mean(), 0.65 * d,
              4.0 * engine_acc.standard_error() + 1e-12);
  // Engine and legacy agree with each other within combined noise.
  EXPECT_NEAR(engine_acc.mean(), legacy_acc.mean(),
              4.0 * (engine_acc.standard_error() +
                     legacy_acc.standard_error()));
}

TEST(EngineEquivalence, FullMissStillZeroesCounts) {
  const Torus2D torus(4, 4);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 32;
  cfg.detection_miss_probability = 1.0;
  const DensityResult r = run_density_walk(torus, cfg, 9);
  for (std::uint64_t c : r.collision_counts) {
    EXPECT_EQ(c, 0u);
  }
}

// --- Batched neighbor sampling ----------------------------------------

template <graph::Topology T>
void expect_bulk_matches_sequential(const T& topo, std::uint64_t seed) {
  rng::Xoshiro256pp place(seed);
  std::vector<typename T::node_type> start(1000);
  for (auto& p : start) {
    p = topo.random_node(place);
  }

  rng::Xoshiro256pp gen_seq(seed + 1);
  rng::Xoshiro256pp gen_bulk(seed + 1);
  std::vector<typename T::node_type> seq = start;
  std::vector<typename T::node_type> bulk = start;
  for (int step = 0; step < 5; ++step) {
    for (auto& p : seq) {
      p = topo.random_neighbor(p, gen_seq);
    }
    graph::random_neighbors(
        topo, std::span<const typename T::node_type>(bulk),
        std::span<typename T::node_type>(bulk), gen_bulk);
    EXPECT_EQ(seq, bulk) << topo.name() << " diverged at step " << step;
    EXPECT_EQ(gen_seq(), gen_bulk())
        << topo.name() << " consumed a different number of draws";
    // Keep both generators aligned after the probe draw above.
  }
}

TEST(BulkNeighbors, StreamIdenticalToSequentialStepping) {
  expect_bulk_matches_sequential(Ring(1000), 51);
  expect_bulk_matches_sequential(Torus2D(40, 30), 52);
  expect_bulk_matches_sequential(Hypercube(12), 53);
  expect_bulk_matches_sequential(graph::TorusKD(4, 5), 54);
  expect_bulk_matches_sequential(graph::CompleteGraph(333), 55);
  const graph::Graph g = graph::make_random_regular_graph(200, 6, 7);
  expect_bulk_matches_sequential(graph::ExplicitTopology(g, "rr"), 56);
}

TEST(BulkNeighbors, SizeMismatchThrows) {
  const Ring ring(64);
  rng::Xoshiro256pp gen(1);
  std::vector<Ring::node_type> in(8, 0);
  std::vector<Ring::node_type> out(7, 0);
  EXPECT_THROW(graph::random_neighbors(
                   ring, std::span<const Ring::node_type>(in),
                   std::span<Ring::node_type>(out), gen),
               std::invalid_argument);
}

// --- Engine config + observer composition ------------------------------

TEST(WalkConfig, ValidatesFields) {
  WalkConfig cfg;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // zero agents
  cfg.num_agents = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // zero rounds
  cfg.rounds = 1;
  EXPECT_NO_THROW(cfg.validate());
  cfg.lazy_probability = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.lazy_probability = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(WalkEngine, ComposedObserversMatchSeparateRuns) {
  // Observers that do not draw from the generator can be stacked without
  // changing each other's results: a combined collision+property run
  // must equal the two dedicated drivers at the same stream seed.
  const Torus2D torus(16, 16);
  constexpr std::uint32_t kAgents = 30;
  constexpr std::uint32_t kRounds = 90;
  std::vector<bool> has_property(kAgents, false);
  has_property[0] = has_property[5] = has_property[17] = true;

  WalkConfig cfg;
  cfg.num_agents = kAgents;
  cfg.rounds = kRounds;
  CollisionObserver collisions(kAgents);
  PropertyObserver properties(has_property);
  constexpr std::uint64_t kStreamSeed = 0xABCDEFull;
  run_walk(torus, cfg, kStreamSeed,
           static_cast<const std::vector<Torus2D::node_type>*>(nullptr),
           collisions, properties);

  CollisionObserver collisions_only(kAgents);
  run_walk(torus, cfg, kStreamSeed,
           static_cast<const std::vector<Torus2D::node_type>*>(nullptr),
           collisions_only);
  EXPECT_EQ(collisions.counts(), collisions_only.counts());

  PropertyObserver properties_only(has_property);
  run_walk(torus, cfg, kStreamSeed,
           static_cast<const std::vector<Torus2D::node_type>*>(nullptr),
           properties_only);
  EXPECT_EQ(properties.total_counts(), properties_only.total_counts());
  EXPECT_EQ(properties.property_counts(),
            properties_only.property_counts());

  // total_counts is exactly what the CollisionObserver accumulates.
  EXPECT_EQ(properties.total_counts(), collisions.counts());
}

TEST(WalkEngine, TrajectoryDriverStillMatchesItsContract) {
  // run_trajectory now rides the engine; shape and determinism hold.
  const Torus2D torus(16, 16);
  const TrajectoryResult a = run_trajectory(torus, 12, 4, {5, 20}, 9);
  const TrajectoryResult b = run_trajectory(torus, 12, 4, {5, 20}, 9);
  EXPECT_EQ(a.estimates, b.estimates);
  ASSERT_EQ(a.estimates.size(), 4u);
  for (const auto& row : a.estimates) {
    ASSERT_EQ(row.size(), 2u);
    const double scaled_final = row[1] * 20;
    EXPECT_NEAR(scaled_final, std::round(scaled_final), 1e-9);
  }
}

TEST(LocalDensityProfile, ClusteredStartRelaxesTowardGlobalDensity) {
  const Torus2D torus(64, 64);
  constexpr std::uint32_t kAgents = 64;
  std::vector<Torus2D::node_type> clustered;
  for (std::uint32_t i = 0; i < kAgents; ++i) {
    clustered.push_back(Torus2D::pack(i % 8, i / 8));
  }
  const LocalDensityProfile profile = run_local_density_profile(
      torus, kAgents, /*radius=*/4, {1, 2048}, 77, &clustered);
  ASSERT_EQ(profile.densities.size(), 2u);
  ASSERT_EQ(profile.densities[0].size(), kAgents);
  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) {
      s += x;
    }
    return s / static_cast<double>(v.size());
  };
  const double early = mean(profile.densities[0]);
  const double late = mean(profile.densities[1]);
  EXPECT_DOUBLE_EQ(profile.global_density, 63.0 / 4096.0);
  // Packed 8x8 start: experienced local density starts far above the
  // global density and relaxes most of the way back down.
  EXPECT_GT(early, 10.0 * profile.global_density);
  EXPECT_LT(late, early / 3.0);
}

TEST(LocalDensityProfile, DeterministicInSeed) {
  const Torus2D torus(32, 32);
  const LocalDensityProfile a =
      run_local_density_profile(torus, 20, 3, {4, 16}, 5);
  const LocalDensityProfile b =
      run_local_density_profile(torus, 20, 3, {4, 16}, 5);
  EXPECT_EQ(a.densities, b.densities);
}

}  // namespace
}  // namespace antdense::sim
