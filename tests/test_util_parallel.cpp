#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace antdense::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> visits(kTasks);
  parallel_for(kTasks, [&](std::size_t i) { ++visits[i]; }, 4);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroTasksIsNoOp) {
  parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; }, 2);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  constexpr std::size_t kTasks = 64;
  auto run = [&](unsigned threads) {
    std::vector<double> out(kTasks);
    parallel_for(
        kTasks, [&](std::size_t i) { out[i] = static_cast<double>(i * i); },
        threads);
    return out;
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(2), run(8));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 13) {
              throw std::runtime_error("boom");
            }
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanTasksIsFine) {
  std::atomic<int> total{0};
  parallel_for(3, [&](std::size_t) { ++total; }, 16);
  EXPECT_EQ(total.load(), 3);
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

// ---------------------------------------------------------------------
// parallel_for_stoppable — the campaign scheduler's jthread work queue
// ---------------------------------------------------------------------

TEST(ParallelForStoppable, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> visits(kTasks);
  parallel_for_stoppable(
      kTasks, [&](std::size_t i, std::stop_token) { ++visits[i]; }, 4);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForStoppable, ResultIndependentOfThreadCount) {
  constexpr std::size_t kTasks = 64;
  auto run = [&](unsigned threads) {
    std::vector<double> out(kTasks);
    parallel_for_stoppable(
        kTasks,
        [&](std::size_t i, std::stop_token) {
          out[i] = static_cast<double>(i * i);
        },
        threads);
    return out;
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(2), run(8));
}

TEST(ParallelForStoppable, ExceptionStopsHandingOutWork) {
  std::atomic<int> started{0};
  EXPECT_THROW(
      parallel_for_stoppable(
          1000,
          [&](std::size_t i, std::stop_token) {
            ++started;
            if (i == 0) {
              throw std::runtime_error("boom");
            }
          },
          2),
      std::runtime_error);
  // The failing task plus at most the tasks already claimed by other
  // workers run; the queue must not drain all 1000.
  EXPECT_LT(started.load(), 1000);
}

TEST(ParallelForStoppable, TokenObservableInsideTasks) {
  // Without an exception no stop is ever requested, single- or
  // multi-threaded.
  std::atomic<int> stopped{0};
  parallel_for_stoppable(
      8,
      [&](std::size_t, std::stop_token token) {
        if (token.stop_requested()) {
          ++stopped;
        }
      },
      3);
  EXPECT_EQ(stopped.load(), 0);
}

}  // namespace
}  // namespace antdense::util
