#include "util/check.hpp"

#include <gtest/gtest.h>

namespace antdense::util {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(ANTDENSE_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, FailingConditionThrowsInvalidArgument) {
  EXPECT_THROW(ANTDENSE_CHECK(false, "precondition"), std::invalid_argument);
}

TEST(Check, MessageIncludesExpressionAndText) {
  try {
    ANTDENSE_CHECK(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Assert, FailingInvariantThrowsLogicError) {
  EXPECT_THROW(ANTDENSE_ASSERT(false, "invariant"), std::logic_error);
}

TEST(Assert, PassingInvariantDoesNothing) {
  EXPECT_NO_THROW(ANTDENSE_ASSERT(true, "ok"));
}

}  // namespace
}  // namespace antdense::util
