// Property sweep (TEST_P): generator contracts across parameter grids —
// random-regular graphs are simple/regular/connected for every (n, k);
// ER hits its exact edge budget; BA obeys its minimum-degree law.
#include <gtest/gtest.h>

#include <string>

#include "graph/algos.hpp"
#include "graph/generators.hpp"

namespace antdense::graph {
namespace {

struct RegularCase {
  std::uint32_t n;
  std::uint32_t k;
};

class RandomRegularSweep : public ::testing::TestWithParam<RegularCase> {};

TEST_P(RandomRegularSweep, SimpleRegularConnected) {
  const auto& p = GetParam();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = make_random_regular_graph(p.n, p.k, seed);
    std::uint32_t degree = 0;
    ASSERT_TRUE(g.is_regular(&degree)) << "n=" << p.n << " k=" << p.k;
    EXPECT_EQ(degree, p.k);
    // Simplicity: sorted adjacency has no self references or duplicates.
    for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_NE(nbrs[i], v);
        if (i > 0) {
          EXPECT_NE(nbrs[i], nbrs[i - 1]);
        }
      }
    }
    if (p.k >= 3) {
      EXPECT_TRUE(is_connected(g)) << "n=" << p.n << " k=" << p.k
                                   << " seed=" << seed;
    }
  }
}

// GCC 12 raises a -Wrestrict false positive (GCC bug 105329) from the
// inlined std::string concatenation in the parameter-name lambdas in
// this file under -O2.  Scope the suppression from the first
// instantiation to the last so -Werror builds stay clean without losing
// the warning anywhere else; the matching pop is at the end of the file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomRegularSweep,
    ::testing::Values(RegularCase{16, 3}, RegularCase{50, 4},
                      RegularCase{64, 6}, RegularCase{128, 8},
                      RegularCase{256, 12}, RegularCase{512, 16},
                      RegularCase{1024, 10}),
    [](const ::testing::TestParamInfo<RegularCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_k" +
             std::to_string(param_info.param.k);
    });

struct ErCase {
  std::uint32_t n;
  std::uint64_t m;
};

class ErdosRenyiSweep : public ::testing::TestWithParam<ErCase> {};

TEST_P(ErdosRenyiSweep, ExactEdgeCountNoLoopsNoDuplicates) {
  const auto& p = GetParam();
  const Graph g = make_erdos_renyi_graph(p.n, p.m, 0xEE);
  EXPECT_EQ(g.num_edges(), p.m);
  std::uint64_t total_degree = 0;
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    total_degree += g.degree(v);
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], v);
      if (i > 0) {
        EXPECT_NE(nbrs[i], nbrs[i - 1]);
      }
    }
  }
  EXPECT_EQ(total_degree, 2 * p.m);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ErdosRenyiSweep,
    ::testing::Values(ErCase{10, 0}, ErCase{10, 45},  // empty and complete
                      ErCase{100, 50}, ErCase{100, 500},
                      ErCase{1000, 3000}),
    [](const ::testing::TestParamInfo<ErCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_m" +
             std::to_string(param_info.param.m);
    });

struct BaCase {
  std::uint32_t n;
  std::uint32_t attach;
};

class BarabasiAlbertSweep : public ::testing::TestWithParam<BaCase> {};

TEST_P(BarabasiAlbertSweep, MinDegreeAndConnectivity) {
  const auto& p = GetParam();
  const Graph g = make_barabasi_albert_graph(p.n, p.attach, 0xBA);
  EXPECT_EQ(g.num_vertices(), p.n);
  EXPECT_GE(g.min_degree(), p.attach);
  EXPECT_TRUE(is_connected(g));
  // Edge count: seed clique + attach per arrival.
  const std::uint64_t seed_size = p.attach + 1;
  const std::uint64_t expected =
      seed_size * (seed_size - 1) / 2 +
      static_cast<std::uint64_t>(p.n - seed_size) * p.attach;
  EXPECT_EQ(g.num_edges(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BarabasiAlbertSweep,
    ::testing::Values(BaCase{10, 1}, BaCase{100, 2}, BaCase{500, 3},
                      BaCase{1000, 5}),
    [](const ::testing::TestParamInfo<BaCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_attach" +
             std::to_string(param_info.param.attach);
    });

struct TorusCase {
  std::uint32_t dims;
  std::uint32_t side;
};

class TorusGraphSweep : public ::testing::TestWithParam<TorusCase> {};

TEST_P(TorusGraphSweep, RegularConnectedRightSize) {
  const auto& p = GetParam();
  const Graph g = make_torus_kd_graph(p.dims, p.side);
  std::uint64_t expect_nodes = 1;
  for (std::uint32_t i = 0; i < p.dims; ++i) {
    expect_nodes *= p.side;
  }
  EXPECT_EQ(g.num_vertices(), expect_nodes);
  std::uint32_t degree = 0;
  ASSERT_TRUE(g.is_regular(&degree));
  EXPECT_EQ(degree, 2 * p.dims);
  EXPECT_TRUE(is_connected(g));
  // Bipartite exactly when the side is even.
  EXPECT_EQ(is_bipartite(g), p.side % 2 == 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TorusGraphSweep,
    ::testing::Values(TorusCase{1, 8}, TorusCase{2, 5}, TorusCase{2, 6},
                      TorusCase{3, 4}, TorusCase{3, 5}, TorusCase{4, 3}),
    [](const ::testing::TestParamInfo<TorusCase>& param_info) {
      return "d" + std::to_string(param_info.param.dims) + "_s" +
             std::to_string(param_info.param.side);
    });

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace antdense::graph
