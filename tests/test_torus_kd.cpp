#include "graph/torus_kd.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

TEST(TorusKD, BasicProperties) {
  const TorusKD t(3, 8);
  EXPECT_EQ(t.num_nodes(), 512u);
  EXPECT_EQ(t.degree(), 6u);
  EXPECT_EQ(t.dimensions(), 3u);
  EXPECT_EQ(t.side(), 8u);
}

TEST(TorusKD, RejectsBadParameters) {
  EXPECT_THROW(TorusKD(0, 8), std::invalid_argument);
  EXPECT_THROW(TorusKD(17, 4), std::invalid_argument);
  EXPECT_THROW(TorusKD(3, 1), std::invalid_argument);
  // 16 dims * 5 bits = 80 > 64 bits.
  EXPECT_THROW(TorusKD(16, 31), std::invalid_argument);
}

TEST(TorusKD, MakeNodeRoundTrip) {
  const TorusKD t(4, 5);
  const auto u = t.make_node({1, 2, 3, 4});
  EXPECT_EQ(t.coordinate(u, 0), 1u);
  EXPECT_EQ(t.coordinate(u, 1), 2u);
  EXPECT_EQ(t.coordinate(u, 2), 3u);
  EXPECT_EQ(t.coordinate(u, 3), 4u);
}

TEST(TorusKD, MakeNodeValidates) {
  const TorusKD t(2, 4);
  EXPECT_THROW(t.make_node({0}), std::invalid_argument);
  EXPECT_THROW(t.make_node({0, 4}), std::invalid_argument);
}

TEST(TorusKD, StepWrapsPerDimension) {
  const TorusKD t(3, 4);
  const auto u = t.make_node({3, 0, 2});
  EXPECT_EQ(t.coordinate(t.step(u, 0, true), 0), 0u);   // 3 +1 wraps
  EXPECT_EQ(t.coordinate(t.step(u, 1, false), 1), 3u);  // 0 -1 wraps
  EXPECT_EQ(t.coordinate(t.step(u, 2, true), 2), 3u);   // ordinary
}

TEST(TorusKD, StepTouchesOnlyOneDimension) {
  const TorusKD t(4, 6);
  const auto u = t.make_node({1, 2, 3, 4});
  const auto v = t.step(u, 2, true);
  EXPECT_EQ(t.coordinate(v, 0), 1u);
  EXPECT_EQ(t.coordinate(v, 1), 2u);
  EXPECT_EQ(t.coordinate(v, 2), 4u);
  EXPECT_EQ(t.coordinate(v, 3), 4u);
}

TEST(TorusKD, KeyIsDenseAndUnique) {
  const TorusKD t(2, 5);
  std::set<std::uint64_t> keys;
  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = 0; b < 5; ++b) {
      const auto key = t.key(t.make_node({a, b}));
      EXPECT_LT(key, t.num_nodes());
      keys.insert(key);
    }
  }
  EXPECT_EQ(keys.size(), 25u);
}

TEST(TorusKD, NonPowerOfTwoSideWrapsCorrectly) {
  const TorusKD t(2, 6);
  const auto u = t.make_node({5, 5});
  const auto v = t.step(u, 0, true);
  EXPECT_EQ(t.coordinate(v, 0), 0u);
  EXPECT_EQ(t.num_nodes(), 36u);
}

TEST(TorusKD, RandomNeighborUniformOver2kDirections) {
  const TorusKD t(3, 8);
  rng::Xoshiro256pp gen(5);
  const auto u = t.make_node({4, 4, 4});
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[t.key(t.random_neighbor(u, gen))];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 1.0 / 6.0, 0.01);
  }
}

TEST(TorusKD, OneDimensionMatchesRingBehavior) {
  const TorusKD t(1, 10);
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.degree(), 2u);
}

TEST(TorusKD, ForEachNeighborCount) {
  const TorusKD t(3, 5);
  int count = 0;
  t.for_each_neighbor(t.make_node({1, 1, 1}),
                      [&](TorusKD::node_type) { ++count; });
  EXPECT_EQ(count, 6);
}

}  // namespace
}  // namespace antdense::graph
