// The dynamics layer, end to end through scenario::Experiment:
//
//   - Goldens: dynamics-absent scenarios produce byte-identical result
//     documents to the pre-dynamics build on all three engines (hashes
//     captured before the layer landed — the "static worlds are
//     untouched" contract, which also pins the sensing-spec redesign).
//   - Invariance: a churned sharded walk is bit-identical for 1, 2, and
//     8 threads (mutation is serial; rewrites are per-range
//     deterministic).
//   - Degeneracy: churn with both rates 0 equals the static walk
//     estimate for estimate, and a drift model with no deaths/births
//     likewise.
//   - Statistics: relative error grows monotone-ish with churn
//     aggressiveness on a torus (fixed seeds, so deterministic).
#include "scenario/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/any_topology.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/density_sim.hpp"
#include "sim/dynamic_world.hpp"
#include "sim/sharded_walk.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

namespace antdense {
namespace {

using scenario::Experiment;
using scenario::Registry;
using scenario::ScenarioSpec;

ScenarioSpec spec_of(const std::string& text) {
  return ScenarioSpec::from_json(util::JsonValue::parse(text));
}

/// The result document's content hash: to_json() minus the two wall-
/// clock fields, dumped compact.  Matches the pre-dynamics capture
/// procedure exactly.
std::string result_hash(const ScenarioSpec& spec) {
  util::JsonValue doc = Experiment(spec).run().to_json();
  doc.erase("elapsed_seconds");
  doc.erase("elapsed_ns");
  return util::hex64(util::fnv1a64(doc.dump(0)));
}

// ---------------------------------------------------------------------
// Static worlds are untouched: result-document goldens, all 3 engines
// ---------------------------------------------------------------------

TEST(DynamicScenarios, StaticResultsAreByteIdenticalToPreDynamicsBuild) {
  const struct {
    const char* json;
    const char* hash;
  } goldens[] = {
      {R"({"topology":"torus2d:32x32","workload":"density","agents":64,
           "rounds":16,"seed":1,"engine":"single"})",
       "db12d2519312913a"},
      {R"({"topology":"torus2d:32x32","workload":"density","agents":64,
           "rounds":16,"seed":1,"engine":"sharded","threads":3})",
       "395fd1682c502a72"},
      {R"({"topology":"torus2d:32x32","workload":"density","agents":64,
           "rounds":16,"seed":1,"engine":"vector"})",
       "150f499712b67a77"},
      {R"({"topology":"torus2d:32x32","workload":"density","agents":64,
           "rounds":16,"seed":1,"miss":0.25,"spurious":0.02,"trials":2,
           "engine":"single"})",
       "a2aec93c6a3889aa"},
      {R"({"topology":"torus2d:32x32","workload":"density","agents":64,
           "rounds":16,"seed":1,"miss":0.25,"spurious":0.02,"trials":2,
           "engine":"sharded","threads":2})",
       "ad9d8b70a39da091"},
      {R"({"topology":"ring:1024","workload":"property","agents":50,
           "rounds":12,"property-fraction":0.25,"seed":9,
           "engine":"sharded","threads":2})",
       "f7bee11785200bdd"},
      {R"({"topology":"hypercube:10","workload":"trajectory","tracked":4,
           "checkpoints":5,"agents":32,"rounds":20,"seed":11,
           "engine":"single"})",
       "50ccd5e52a6de938"},
  };
  for (const auto& g : goldens) {
    EXPECT_EQ(result_hash(spec_of(g.json)), g.hash)
        << "static result drifted for " << g.json;
  }
}

// ---------------------------------------------------------------------
// Thread-count invariance under churn
// ---------------------------------------------------------------------

TEST(DynamicScenarios, ShardedChurnIsBitIdenticalForAnyThreadCount) {
  const graph::AnyTopology topo =
      Registry::built_in().make("torus2d:24x24");
  sim::DensityConfig cfg;
  cfg.num_agents = 48;
  cfg.rounds = 30;
  const auto run_with = [&](unsigned threads) {
    sim::ChurnDynamics model(topo, /*p_edge=*/0.05, /*p_fail=*/0.02,
                             /*mean_down=*/6, /*seed=*/4);
    return sim::run_dynamic_density_walk_sharded(
        topo, cfg, model, /*seed=*/21, sim::ShardExec{.threads = threads});
  };
  const std::vector<double> one = run_with(1);
  EXPECT_EQ(one, run_with(2));
  EXPECT_EQ(one, run_with(8));
  EXPECT_EQ(one.size(), 48u);
}

TEST(DynamicScenarios, ShardedDriftIsBitIdenticalForAnyThreadCount) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:512");
  sim::DensityConfig cfg;
  cfg.num_agents = 40;
  cfg.rounds = 40;
  const auto run_with = [&](unsigned threads) {
    sim::DriftDynamics model(topo, cfg.num_agents, /*p_death=*/0.05,
                             /*p_birth=*/0.08, /*seed=*/2);
    return sim::run_dynamic_density_walk_sharded(
        topo, cfg, model, /*seed=*/5, sim::ShardExec{.threads = threads});
  };
  const std::vector<double> one = run_with(1);
  EXPECT_EQ(one, run_with(2));
  EXPECT_EQ(one, run_with(8));
}

// ---------------------------------------------------------------------
// Degenerate dynamics reproduce the static walk
// ---------------------------------------------------------------------

TEST(DynamicScenarios, ZeroRateChurnEqualsTheStaticWalk) {
  const graph::AnyTopology topo =
      Registry::built_in().make("torus2d:16x16");
  sim::DensityConfig cfg;
  cfg.num_agents = 32;
  cfg.rounds = 24;

  const std::vector<double> expected =
      sim::run_density_walk(topo, cfg, /*seed=*/13).estimates();
  sim::ChurnDynamics churn(topo, 0.0, 0.0, 10, 0);
  EXPECT_EQ(sim::run_dynamic_density_walk(topo, cfg, churn, 13), expected)
      << "a dynamic world that never mutates must reproduce the static "
         "stream bit for bit (single engine)";

  const std::vector<double> expected_sharded =
      sim::run_density_walk_sharded(topo, cfg, /*seed=*/13,
                                    sim::ShardExec{.threads = 2})
          .estimates();
  sim::ChurnDynamics churn2(topo, 0.0, 0.0, 10, 0);
  EXPECT_EQ(sim::run_dynamic_density_walk_sharded(
                topo, cfg, churn2, 13, sim::ShardExec{.threads = 2}),
            expected_sharded)
      << "and on the sharded engine";

  sim::DriftDynamics still(topo, cfg.num_agents, 0.0, 0.0, 0);
  EXPECT_EQ(sim::run_dynamic_density_walk(topo, cfg, still, 13), expected)
      << "a drift model with no deaths or births is the static walk";
}

// ---------------------------------------------------------------------
// Through the Experiment layer
// ---------------------------------------------------------------------

TEST(DynamicScenarios, ExperimentRunsDynamicDensityOnBothEngines) {
  for (const char* engine : {"single", "sharded"}) {
    const ScenarioSpec spec = spec_of(
        std::string(R"({"topology":"torus2d:16x16","workload":"density",)") +
        R"("agents":32,"rounds":20,"seed":3,)" +
        R"("dynamics":"churn:p_edge=0.02,p_fail=0.01","engine":")" +
        engine + "\"}");
    const scenario::ScenarioResult result = Experiment(spec).run();
    EXPECT_EQ(result.estimates.size(), 32u);
    for (const double e : result.estimates) {
      EXPECT_GE(e, 0.0);
      EXPECT_TRUE(std::isfinite(e));
    }
    // The canonicalized dynamics spec lands in the result artifact.
    const util::JsonValue doc = Experiment(spec).run().to_json();
    const util::JsonValue* spec_doc = doc.find("spec");
    ASSERT_NE(spec_doc, nullptr);
    const util::JsonValue* dyn = spec_doc->find("dynamics");
    ASSERT_NE(dyn, nullptr);
    EXPECT_EQ(dyn->as_string(),
              "churn:p_edge=0.02,p_fail=0.01,mean_down=10,seed=0");
  }
}

TEST(DynamicScenarios, ExperimentTrialFanOutPoolsDriftEstimates) {
  const ScenarioSpec spec = spec_of(
      R"({"topology":"ring:256","workload":"density","agents":24,
          "rounds":24,"seed":8,"trials":3,
          "dynamics":"drift:p_death=0.02,p_birth=0.05"})");
  const scenario::ScenarioResult result = Experiment(spec).run();
  // Dead slots are excluded per trial, so the pool is at most
  // trials x agents and non-empty with these gentle rates.
  EXPECT_GT(result.estimates.size(), 0u);
  EXPECT_LE(result.estimates.size(), 72u);
  // Determinism across repeat runs (fresh models per trial, derived
  // per-trial seeds).
  const scenario::ScenarioResult again = Experiment(spec).run();
  EXPECT_EQ(result.estimates, again.estimates);
}

// ---------------------------------------------------------------------
// Statistics: error grows with churn
// ---------------------------------------------------------------------

TEST(DynamicScenarios, RelativeErrorGrowsMonotoneIshWithChurn) {
  // Fixed seeds make this deterministic; the margin is what the
  // committed example campaign (examples/campaigns/churn_sweep.json)
  // reports at larger scale.
  const auto rel_error = [](const char* dynamics) {
    const ScenarioSpec spec = spec_of(
        std::string(
            R"({"topology":"torus2d:24x24","workload":"density",)") +
        R"("agents":58,"rounds":48,"seed":17,"trials":4,"dynamics":")" +
        dynamics + "\"}");
    const scenario::ScenarioResult result = Experiment(spec).run();
    double sum = 0.0;
    for (const double e : result.estimates) {
      sum += std::fabs(e - result.true_value) / result.true_value;
    }
    return sum / static_cast<double>(result.estimates.size());
  };
  const double calm = rel_error("churn:p_edge=0,p_fail=0");
  const double stormy =
      rel_error("churn:p_edge=0.2,p_fail=0.1,mean_down=12");
  EXPECT_GT(stormy, calm)
      << "heavy churn must degrade density estimates (calm=" << calm
      << ", stormy=" << stormy << ")";
}

}  // namespace
}  // namespace antdense
