#include "stats/accumulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace antdense::stats {
namespace {

TEST(Accumulator, EmptyIsZeroed) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.standard_error(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    a.add(x);
  }
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_NEAR(a.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, MinMaxTrackExtremes) {
  Accumulator a;
  a.add(-1.0);
  a.add(10.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.min(), -1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Accumulator, SumMatches) {
  Accumulator a;
  a.add(1.5);
  a.add(2.5);
  EXPECT_DOUBLE_EQ(a.sum(), 4.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 50 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator filled;
  filled.add(1.0);
  filled.add(2.0);
  Accumulator empty;
  Accumulator copy = filled;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 1.5);
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Accumulator, StandardErrorShrinksWithN) {
  Accumulator small;
  Accumulator large;
  for (int i = 0; i < 10; ++i) {
    small.add(i % 2 == 0 ? 1.0 : -1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    large.add(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_GT(small.standard_error(), large.standard_error());
}

TEST(Accumulator, NumericallyStableAroundLargeOffset) {
  Accumulator a;
  constexpr double kOffset = 1e9;
  for (double x : {kOffset + 1.0, kOffset + 2.0, kOffset + 3.0}) {
    a.add(x);
  }
  EXPECT_NEAR(a.mean(), kOffset + 2.0, 1e-3);
  EXPECT_NEAR(a.variance(), 2.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace antdense::stats
