#include "sim/local_density.hpp"

#include <gtest/gtest.h>

#include "rng/xoshiro256pp.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

using graph::Torus2D;

TEST(L1BallSize, PlaneFormula) {
  const Torus2D torus(32, 32);
  EXPECT_EQ(l1_ball_size(torus, 1), 5u);    // center + 4 neighbors
  EXPECT_EQ(l1_ball_size(torus, 2), 13u);
  EXPECT_EQ(l1_ball_size(torus, 3), 25u);
}

TEST(L1BallSize, ValidatesRadius) {
  const Torus2D torus(16, 16);
  EXPECT_THROW(l1_ball_size(torus, 0), std::invalid_argument);
  EXPECT_THROW(l1_ball_size(torus, 8), std::invalid_argument);  // wraps
  EXPECT_NO_THROW(l1_ball_size(torus, 7));
}

TEST(L1BallSize, MatchesEnumeration) {
  const Torus2D torus(64, 64);
  for (std::uint32_t r : {1u, 2u, 5u, 10u}) {
    std::uint64_t count = 0;
    const auto center = Torus2D::pack(32, 32);
    for (std::uint32_t x = 0; x < 64; ++x) {
      for (std::uint32_t y = 0; y < 64; ++y) {
        if (torus.l1_distance(center, Torus2D::pack(x, y)) <= r) {
          ++count;
        }
      }
    }
    EXPECT_EQ(l1_ball_size(torus, r), count) << "r=" << r;
  }
}

TEST(AgentsWithin, CountsAndWraps) {
  const Torus2D torus(16, 16);
  const std::vector<Torus2D::node_type> positions{
      Torus2D::pack(0, 0), Torus2D::pack(15, 0),  // wraps to distance 1
      Torus2D::pack(2, 0), Torus2D::pack(8, 8)};
  EXPECT_EQ(agents_within(torus, positions, Torus2D::pack(0, 0), 2, false),
            3u);
  EXPECT_EQ(agents_within(torus, positions, Torus2D::pack(0, 0), 2, true),
            2u);  // self excluded once
}

TEST(LocalDensity, UniformPlacementTracksGlobal) {
  const Torus2D torus(64, 64);
  rng::Xoshiro256pp gen(1);
  std::vector<Torus2D::node_type> positions(820);  // d ~ 0.2
  for (auto& p : positions) {
    p = torus.random_node(gen);
  }
  const auto locals = per_agent_local_density(torus, positions, 6);
  stats::Accumulator acc;
  for (double l : locals) {
    acc.add(l);
  }
  // Mean local density of others ~ (N-1)/A.
  EXPECT_NEAR(acc.mean(), 819.0 / 4096.0, 0.01);
}

TEST(LocalDensity, ClusteredPlacementDivergesFromGlobal) {
  const Torus2D torus(64, 64);
  rng::Xoshiro256pp gen(2);
  std::vector<Torus2D::node_type> positions;
  for (std::uint32_t i = 0; i < 64; ++i) {
    positions.push_back(Torus2D::pack(i % 8, i / 8));
  }
  const double global_d = 63.0 / 4096.0;
  const auto locals = per_agent_local_density(torus, positions, 4);
  stats::Accumulator acc;
  for (double l : locals) {
    acc.add(l);
  }
  EXPECT_GT(acc.mean(), 10.0 * global_d);
  // And far from the cluster the local density is zero.
  EXPECT_DOUBLE_EQ(
      local_density(torus, positions, Torus2D::pack(40, 40), 4), 0.0);
}

}  // namespace
}  // namespace antdense::sim
