// Memory regression for the implicit layer: a 10^8-node rgg2d density
// scenario must run end to end in O(agents) memory — the whole point of
// implicit generation.  Materializing this substrate would need several
// gigabytes of adjacency (2 |E| * 4 bytes alone is ~6 GB at the chosen
// radius); the walk below must stay under a small fixed budget that only
// scales with agents.  Also pins the determinism contract at scale: the
// sharded engine is bit-identical across thread counts, and each engine
// mode reproduces itself exactly at a fixed seed.
//
// Set ANTDENSE_SKIP_HEAVY=1 to skip on constrained hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/spec.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace antdense {
namespace {

using scenario::EngineMode;
using scenario::Experiment;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;
using scenario::Workload;

/// Peak resident set in bytes, or 0 when the platform cannot report it.
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

ScenarioSpec billion_scale_spec() {
  ScenarioSpec spec;
  // pi r^2 n ~ 8 expected neighbors at n = 10^8: a live substrate, not a
  // degenerate one, while each neighbor query scans only ~25 cells.
  spec.topology = "rgg2d:n=100000000,r=0.00016,seed=1";
  spec.workload = Workload::kDensity;
  spec.agents = 2000;
  spec.rounds = 3;
  spec.trials = 1;
  spec.seed = 99;
  return spec;
}

TEST(ImplicitMemory, HundredMillionNodeScenarioStaysInAgentMemory) {
  if (std::getenv("ANTDENSE_SKIP_HEAVY") != nullptr) {
    GTEST_SKIP() << "ANTDENSE_SKIP_HEAVY set";
  }

  ScenarioSpec spec = billion_scale_spec();
  spec.engine = EngineMode::kSharded;
  spec.threads = 2;
  const ScenarioResult result = Experiment(spec).run();
  EXPECT_EQ(result.estimates.size(), 2000u);
  EXPECT_NEAR(result.true_value, 1999.0 / 1e8, 1e-15);

  const std::uint64_t peak = peak_rss_bytes();
  if (peak == 0) {
    GTEST_SKIP() << "platform cannot report peak RSS";
  }
  // O(agents) budget: agents-sized engine state plus the binary itself.
  // Materialization would need gigabytes; half a GiB of headroom keeps
  // the assertion meaningful without being host-fragile.
  EXPECT_LT(peak, std::uint64_t{512} * 1024 * 1024)
      << "peak RSS " << (peak >> 20) << " MiB — implicit topology is "
      << "no longer O(agents)";
}

TEST(ImplicitMemory, ShardedEngineIsThreadCountInvariantAtScale) {
  if (std::getenv("ANTDENSE_SKIP_HEAVY") != nullptr) {
    GTEST_SKIP() << "ANTDENSE_SKIP_HEAVY set";
  }
  ScenarioSpec spec = billion_scale_spec();
  spec.engine = EngineMode::kSharded;
  std::vector<double> reference;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    spec.threads = threads;
    const ScenarioResult result = Experiment(spec).run();
    if (reference.empty()) {
      reference = result.estimates;
    } else {
      EXPECT_EQ(result.estimates, reference) << threads << " threads";
    }
  }
}

TEST(ImplicitMemory, SingleStreamEngineReproducesItselfAtScale) {
  if (std::getenv("ANTDENSE_SKIP_HEAVY") != nullptr) {
    GTEST_SKIP() << "ANTDENSE_SKIP_HEAVY set";
  }
  ScenarioSpec spec = billion_scale_spec();
  spec.engine = EngineMode::kSingleStream;
  const ScenarioResult a = Experiment(spec).run();
  const ScenarioResult b = Experiment(spec).run();
  EXPECT_EQ(a.estimates, b.estimates);
  EXPECT_EQ(a.estimates.size(), 2000u);
}

}  // namespace
}  // namespace antdense
