// The telemetry layer's two load-bearing contracts (obs/telemetry.hpp):
//
//  1. RNG-neutrality — enabling metrics + tracing changes NOTHING about
//     what an experiment computes.  Pinned as byte-identity of the
//     canonical result document across all three engines.
//  2. Exactness — the striped counters lose nothing: sharded-engine
//     totals are exact and invariant across thread counts, and the
//     collision counter reconciles against the observer's own output.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>

#include "graph/ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/experiment.hpp"
#include "scenario/spec.hpp"
#include "sim/density_sim.hpp"
#include "sim/sharded_walk.hpp"
#include "util/json.hpp"

namespace antdense::obs {
namespace {

scenario::ScenarioSpec small_spec(scenario::EngineMode engine) {
  scenario::ScenarioSpec spec;
  spec.topology = "ring:128";
  spec.workload = scenario::Workload::kDensity;
  spec.agents = 24;
  spec.rounds = 60;
  spec.trials = 2;
  spec.seed = 11;
  spec.engine = engine;
  return spec;
}

/// The result document minus its timing fields — everything that is
/// allowed to depend on the spec, nothing that depends on the clock.
std::string canonical(const scenario::ScenarioSpec& spec) {
  util::JsonValue doc = scenario::Experiment(spec).run().to_json();
  doc.erase("elapsed_seconds");
  doc.erase("elapsed_ns");
  return doc.dump(0);
}

TEST(ObsTelemetry, ResultsAreByteIdenticalWithTelemetryOnAndOff) {
  for (const scenario::EngineMode engine :
       {scenario::EngineMode::kSingleStream, scenario::EngineMode::kSharded,
        scenario::EngineMode::kVector}) {
    const scenario::ScenarioSpec spec = small_spec(engine);
    const std::string baseline = canonical(spec);

    MetricsRegistry metrics;
    TraceRecorder trace;
    Telemetry telemetry{&metrics, &trace};
    std::string instrumented;
    {
      ScopedTelemetry ambient(&telemetry);
      instrumented = canonical(spec);
    }
    EXPECT_EQ(instrumented, baseline)
        << "telemetry must not perturb engine "
        << scenario::engine_mode_name(engine);

    // Guard against a vacuous pass: the instrumented run must actually
    // have hit the engine tap and the trace ring.
    const std::string label = scenario::engine_mode_name(engine);
    EXPECT_EQ(metrics.counter("antdense_engine_rounds_total",
                              {{"engine", label}})
                  .value(),
              static_cast<std::uint64_t>(spec.rounds) * spec.trials);
    EXPECT_GT(trace.event_count(), 0u);
  }
}

TEST(ObsTelemetry, ShardedCountersAreExactAndThreadCountInvariant) {
  const graph::Ring topo(256);
  sim::DensityConfig cfg;
  cfg.num_agents = 100;
  cfg.rounds = 50;

  for (const unsigned threads : {1u, 2u, 8u}) {
    MetricsRegistry metrics;
    Telemetry telemetry{&metrics, nullptr};
    sim::DensityResult result = [&] {
      ScopedTelemetry ambient(&telemetry);
      // shard_size 16 forces multiple shards, so with threads > 1 the
      // striped adds really do come from concurrent pool workers.
      return sim::run_density_walk_sharded(
          topo, cfg, /*seed=*/77,
          sim::ShardExec{.threads = threads, .shard_size = 16});
    }();

    const Labels sharded{{"engine", "sharded"}};
    EXPECT_EQ(
        metrics.counter("antdense_engine_agent_steps_total", sharded).value(),
        static_cast<std::uint64_t>(cfg.num_agents) * cfg.rounds)
        << "threads=" << threads;
    EXPECT_EQ(metrics.counter("antdense_engine_rounds_total", sharded).value(),
              cfg.rounds)
        << "threads=" << threads;

    const std::uint64_t observer_total = std::accumulate(
        result.collision_counts.begin(), result.collision_counts.end(),
        std::uint64_t{0});
    EXPECT_EQ(
        metrics.counter("antdense_collisions_observed_total").value(),
        observer_total)
        << "threads=" << threads;
    EXPECT_GT(observer_total, 0u) << "test needs collisions to count";
  }
}

TEST(ObsTelemetry, AmbientPropagatesThroughTrialFanOut) {
  // trials > 1 with threads > 1 runs each trial on a pool worker; the
  // fan-out must re-install the ambient bundle so per-trial engine taps
  // still land in the registry.
  scenario::ScenarioSpec spec = small_spec(scenario::EngineMode::kSingleStream);
  spec.trials = 4;
  spec.threads = 2;

  MetricsRegistry metrics;
  Telemetry telemetry{&metrics, nullptr};
  {
    ScopedTelemetry ambient(&telemetry);
    scenario::Experiment(spec).run();
  }
  EXPECT_EQ(metrics
                .counter("antdense_engine_agent_steps_total",
                         {{"engine", "single"}})
                .value(),
            static_cast<std::uint64_t>(spec.agents) * spec.rounds *
                spec.trials);
}

TEST(ObsTelemetry, ScopedTelemetryInstallsMasksAndRestores) {
  EXPECT_EQ(ambient_telemetry(), nullptr);
  MetricsRegistry metrics;
  Telemetry telemetry{&metrics, nullptr};
  {
    ScopedTelemetry outer(&telemetry);
    EXPECT_EQ(ambient_telemetry(), &telemetry);
    {
      ScopedTelemetry mask(nullptr);
      EXPECT_EQ(ambient_telemetry(), nullptr) << "nullptr masks the scope";
    }
    EXPECT_EQ(ambient_telemetry(), &telemetry);

    // A bundle with no sinks counts as disabled and is not installed.
    Telemetry empty{};
    ScopedTelemetry disabled(&empty);
    EXPECT_EQ(ambient_telemetry(), nullptr);
  }
  EXPECT_EQ(ambient_telemetry(), nullptr);
}

TEST(ObsTelemetry, EngineTapIsInertWithoutAmbientContext) {
  ASSERT_EQ(ambient_telemetry(), nullptr);
  EngineTap tap("single", {"step", "count", "observe"});
  EXPECT_FALSE(tap.active());
  // All probes must be harmless no-ops.
  tap.add_rounds(10);
  tap.add_agent_steps(100);
  { EngineTap::PhaseSpan span(tap, 0); }
}

}  // namespace
}  // namespace antdense::obs
