#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace antdense::util {
namespace {

TEST(Table, RejectsEmptyHeaderList) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowLengthMustMatchColumns) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, RowBuilderFormatsNumbers) {
  Table t({"name", "value", "count"});
  t.row().cell("x").cell(0.5).cell(std::uint64_t{42}).commit();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], "x");
  EXPECT_EQ(t.rows()[0][2], "42");
}

TEST(Table, MarkdownHasHeaderSeparatorAndAlignment) {
  Table t({"col", "value"});
  t.row().cell("first").cell(1).commit();
  std::ostringstream os;
  t.print_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| col"), std::string::npos);
  EXPECT_NE(out.find("| ---"), std::string::npos);
  EXPECT_NE(out.find("| first"), std::string::npos);
}

TEST(Table, MarkdownPadsAllRowsToEqualWidth) {
  Table t({"c"});
  t.add_row({"wide-cell-content"});
  std::ostringstream os;
  t.print_markdown(os);
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::size_t> widths;
  while (std::getline(in, line)) {
    widths.push_back(line.size());
  }
  ASSERT_EQ(widths.size(), 3u);
  EXPECT_EQ(widths[0], widths[1]);
  EXPECT_EQ(widths[1], widths[2]);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.add_row({"plain"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\nplain\n");
}

TEST(PrintHelpers, SectionAndNote) {
  std::ostringstream os;
  print_section(os, "Title");
  print_note(os, "key", "value");
  EXPECT_NE(os.str().find("## Title"), std::string::npos);
  EXPECT_NE(os.str().find("- key: value"), std::string::npos);
}

}  // namespace
}  // namespace antdense::util
