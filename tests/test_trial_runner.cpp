#include "sim/trial_runner.hpp"

#include <gtest/gtest.h>

#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

using graph::Torus2D;

DensityConfig small_config() {
  DensityConfig cfg;
  cfg.num_agents = 8;
  cfg.rounds = 20;
  return cfg;
}

TEST(CollectAllAgentEstimates, SizeIsTrialsTimesAgents) {
  const Torus2D torus(8, 8);
  const auto estimates =
      collect_all_agent_estimates(torus, small_config(), 1, 10, 2);
  EXPECT_EQ(estimates.size(), 80u);
}

TEST(CollectAllAgentEstimates, ThreadCountInvariant) {
  const Torus2D torus(8, 8);
  const auto one = collect_all_agent_estimates(torus, small_config(), 2, 12, 1);
  const auto two = collect_all_agent_estimates(torus, small_config(), 2, 12, 2);
  const auto four =
      collect_all_agent_estimates(torus, small_config(), 2, 12, 4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(two, four);
}

TEST(CollectAllAgentEstimates, OversubscribedThreadsStillDeterministic) {
  // Locks in the seed-derivation contract: each trial's randomness comes
  // from its index, never the executing thread — including when there
  // are more workers (8) than this machine may have cores, so trials
  // interleave arbitrarily.
  const Torus2D torus(12, 12);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 30;
  const auto t1 = collect_all_agent_estimates(torus, cfg, 6, 33, 1);
  const auto t2 = collect_all_agent_estimates(torus, cfg, 6, 33, 2);
  const auto t8 = collect_all_agent_estimates(torus, cfg, 6, 33, 8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(CollectSingleAgentEstimates, OversubscribedThreadsStillDeterministic) {
  const Torus2D torus(12, 12);
  DensityConfig cfg;
  cfg.num_agents = 10;
  cfg.rounds = 30;
  const auto t1 = collect_single_agent_estimates(torus, cfg, 7, 33, 1);
  const auto t2 = collect_single_agent_estimates(torus, cfg, 7, 33, 2);
  const auto t8 = collect_single_agent_estimates(torus, cfg, 7, 33, 8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(CollectSingleAgentEstimates, OnePerTrial) {
  const Torus2D torus(8, 8);
  const auto estimates =
      collect_single_agent_estimates(torus, small_config(), 3, 25, 2);
  EXPECT_EQ(estimates.size(), 25u);
}

TEST(CollectSingleAgentEstimates, MatchesDirectRun) {
  const Torus2D torus(8, 8);
  const auto estimates =
      collect_single_agent_estimates(torus, small_config(), 4, 5, 1);
  for (std::size_t trial = 0; trial < 5; ++trial) {
    const DensityResult direct = run_density_walk(
        torus, small_config(), rng::derive_seed(4, trial));
    EXPECT_DOUBLE_EQ(estimates[trial],
                     static_cast<double>(direct.collision_counts[0]) /
                         direct.rounds);
  }
}

TEST(CollectAllAgentEstimates, MeanNearTruth) {
  const Torus2D torus(12, 12);
  DensityConfig cfg;
  cfg.num_agents = 15;
  cfg.rounds = 64;
  const auto estimates = collect_all_agent_estimates(torus, cfg, 5, 200, 2);
  stats::Accumulator acc;
  for (double e : estimates) {
    acc.add(e);
  }
  EXPECT_NEAR(acc.mean(), 14.0 / 144.0, 5.0 * acc.standard_error() + 1e-12);
}

}  // namespace
}  // namespace antdense::sim
