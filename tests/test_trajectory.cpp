#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

using graph::Torus2D;

TEST(Trajectory, ValidatesArguments) {
  const Torus2D torus(16, 16);
  EXPECT_THROW(run_trajectory(torus, 1, 1, {10}, 1), std::invalid_argument);
  EXPECT_THROW(run_trajectory(torus, 10, 0, {10}, 1), std::invalid_argument);
  EXPECT_THROW(run_trajectory(torus, 10, 11, {10}, 1),
               std::invalid_argument);
  EXPECT_THROW(run_trajectory(torus, 10, 2, {}, 1), std::invalid_argument);
  EXPECT_THROW(run_trajectory(torus, 10, 2, {10, 10}, 1),
               std::invalid_argument);
  EXPECT_THROW(run_trajectory(torus, 10, 2, {0, 10}, 1),
               std::invalid_argument);
}

TEST(Trajectory, ShapeMatchesRequest) {
  const Torus2D torus(16, 16);
  const auto r = run_trajectory(torus, 20, 3, {8, 16, 64}, 2);
  EXPECT_EQ(r.checkpoints, (std::vector<std::uint32_t>{8, 16, 64}));
  ASSERT_EQ(r.estimates.size(), 3u);
  for (const auto& row : r.estimates) {
    EXPECT_EQ(row.size(), 3u);
  }
  EXPECT_DOUBLE_EQ(r.true_density, 19.0 / 256.0);
}

TEST(Trajectory, FinalSnapshotMatchesFullRun) {
  // The running estimate at the last checkpoint is exactly c/t of a
  // full run — verify against run_density_walk via a sanity property:
  // values must be multiples of 1/t and non-negative.
  const Torus2D torus(16, 16);
  constexpr std::uint32_t kRounds = 50;
  const auto r = run_trajectory(torus, 20, 20, {kRounds}, 3);
  for (const auto& row : r.estimates) {
    const double scaled = row[0] * kRounds;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    EXPECT_GE(row[0], 0.0);
  }
}

TEST(Trajectory, ErrorShrinksAlongTheRun) {
  // Anytime property: pooled absolute error at the late checkpoint is
  // smaller than at the early one.
  const Torus2D torus(48, 48);
  constexpr std::uint32_t kAgents = 231;  // d ~ 0.1
  stats::Accumulator early, late;
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto r =
        run_trajectory(torus, kAgents, kAgents, {32, 2048}, 100 + trial);
    for (std::uint32_t a = 0; a < kAgents; ++a) {
      early.add(std::fabs(r.estimates[a][0] - r.true_density));
      late.add(std::fabs(r.estimates[a][1] - r.true_density));
    }
  }
  EXPECT_LT(late.mean(), 0.5 * early.mean());
}

TEST(Trajectory, DeterministicInSeed) {
  const Torus2D torus(16, 16);
  const auto a = run_trajectory(torus, 12, 4, {5, 20}, 9);
  const auto b = run_trajectory(torus, 12, 4, {5, 20}, 9);
  EXPECT_EQ(a.estimates, b.estimates);
}

}  // namespace
}  // namespace antdense::sim
