#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace antdense::stats {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillCloseWithLowerR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 2.0 + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(linear_fit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({2.0, 2.0}, {1.0, 5.0}), std::invalid_argument);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  std::vector<double> x, y;
  for (int m = 1; m <= 100; ++m) {
    x.push_back(m);
    y.push_back(5.0 * std::pow(m, -1.5));
  }
  const LinearFit fit = log_log_fit(x, y);
  EXPECT_NEAR(fit.slope, -1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-9);
}

TEST(LogLogFit, SkipsNonPositivePoints) {
  const std::vector<double> x{0.0, 1.0, 2.0, 4.0, 8.0};
  const std::vector<double> y{9.0, 1.0, 0.5, 0.25, 0.125};  // y = x^-1
  const LinearFit fit = log_log_fit(x, y);  // x=0 point skipped
  EXPECT_NEAR(fit.slope, -1.0, 1e-9);
}

TEST(SemilogFit, RecoversExponentialDecay) {
  std::vector<double> x, y;
  for (int m = 0; m <= 40; ++m) {
    x.push_back(m);
    y.push_back(2.0 * std::pow(0.9, m));
  }
  const LinearFit fit = semilog_fit(x, y);
  EXPECT_NEAR(std::exp(fit.slope), 0.9, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 2.0, 1e-9);
}

TEST(SemilogFit, ZeroProbabilitiesIgnored) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 0.5, 0.0, 0.125};  // odd-parity zero
  const LinearFit fit = semilog_fit(x, y);
  EXPECT_NEAR(std::exp(fit.slope), 0.5, 1e-9);
}

}  // namespace
}  // namespace antdense::stats
