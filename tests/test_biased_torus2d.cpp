#include "graph/biased_torus2d.hpp"

#include <gtest/gtest.h>

#include <map>

#include "rng/xoshiro256pp.hpp"
#include "sim/density_sim.hpp"
#include "stats/accumulator.hpp"

namespace antdense::graph {
namespace {

TEST(BiasedTorus2D, ValidatesProbabilities) {
  EXPECT_THROW(BiasedTorus2D(8, 8, {0.5, 0.5, 0.5, 0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(BiasedTorus2D(8, 8, {-0.1, 0.5, 0.3, 0.3, 0.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(BiasedTorus2D(8, 8, {0.25, 0.25, 0.25, 0.25, 0.0}));
}

TEST(BiasedTorus2D, FactoryValidation) {
  EXPECT_THROW(BiasedTorus2D::with_drift(8, 8, 0.3), std::invalid_argument);
  EXPECT_THROW(BiasedTorus2D::with_pause(8, 8, 1.0), std::invalid_argument);
}

TEST(BiasedTorus2D, UnbiasedMatchesStepFrequencies) {
  const BiasedTorus2D topo = BiasedTorus2D::unbiased(16, 16);
  rng::Xoshiro256pp gen(1);
  const auto u = Torus2D::pack(8, 8);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[topo.key(topo.random_neighbor(u, gen))];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.01);
  }
}

TEST(BiasedTorus2D, DriftSkewsDirectionFrequencies) {
  const BiasedTorus2D topo = BiasedTorus2D::with_drift(32, 32, 0.15);
  rng::Xoshiro256pp gen(2);
  const auto u = Torus2D::pack(16, 16);
  int plus_x = 0, minus_x = 0;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = topo.random_neighbor(u, gen);
    const auto x = Torus2D::x_of(v);
    if (x == 17) ++plus_x;
    if (x == 15) ++minus_x;
  }
  EXPECT_NEAR(static_cast<double>(plus_x) / kDraws, 0.40, 0.01);
  EXPECT_NEAR(static_cast<double>(minus_x) / kDraws, 0.10, 0.01);
}

TEST(BiasedTorus2D, PauseKeepsAgentInPlace) {
  const BiasedTorus2D topo = BiasedTorus2D::with_pause(16, 16, 0.5);
  rng::Xoshiro256pp gen(3);
  const auto u = Torus2D::pack(4, 4);
  int stays = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (topo.random_neighbor(u, gen) == u) {
      ++stays;
    }
  }
  EXPECT_NEAR(static_cast<double>(stays) / kDraws, 0.5, 0.01);
}

TEST(BiasedTorus2D, DriftPreservesUnbiasedDensityEstimation) {
  // Translation-invariant drift keeps stationary marginals uniform, so
  // Lemma 2 survives: E[d~] = d even with drifting agents.
  const BiasedTorus2D topo = BiasedTorus2D::with_drift(24, 24, 0.1);
  sim::DensityConfig cfg;
  cfg.num_agents = 40;
  cfg.rounds = 120;
  const double d = 39.0 / 576.0;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    const auto r = sim::run_density_walk(topo, cfg, 900 + trial);
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), d, 4.0 * acc.standard_error() + 1e-12);
}

TEST(BiasedTorus2D, CommonDriftIncreasesRecollisionClustering) {
  // Two agents drifting the same way have a *less* diffusive relative
  // walk in x (relative step variance shrinks), concentrating
  // re-collisions.  Compare mean pair collisions given a first one.
  // (Shape check only: drifted >= unbiased.)
  const BiasedTorus2D drift = BiasedTorus2D::with_drift(64, 64, 0.2);
  const BiasedTorus2D plain = BiasedTorus2D::unbiased(64, 64);
  rng::Xoshiro256pp gen(5);
  auto mean_recollisions = [&](const BiasedTorus2D& topo) {
    double total = 0.0;
    constexpr int kTrials = 30000;
    for (int trial = 0; trial < kTrials; ++trial) {
      auto a = topo.random_node(gen);
      auto b = a;
      int c = 0;
      for (int m = 0; m < 128; ++m) {
        a = topo.random_neighbor(a, gen);
        b = topo.random_neighbor(b, gen);
        if (topo.key(a) == topo.key(b)) {
          ++c;
        }
      }
      total += c;
    }
    return total / 30000.0;
  };
  EXPECT_GT(mean_recollisions(drift), mean_recollisions(plain));
}

}  // namespace
}  // namespace antdense::graph
