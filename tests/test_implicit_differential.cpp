// Differential suite for the implicit generators: each family is
// materialized at small n into an explicit CSR reference (two
// independent code paths — per-node enumeration vs. whole-graph
// construction — must describe the same graph), then implicit sampling
// is checked against the reference for edge-set agreement, degree-
// sequence agreement, and neighbor-draw distribution (chi-squared
// against uniform-over-adjacency, which is exactly what the explicit
// reference samples).  Fixed seeds make these regression tests, not
// flaky statistics.
#include "graph/materialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/ba.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/gnp.hpp"
#include "graph/graph.hpp"
#include "graph/rgg2d.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

/// Chi-squared statistic of `draws` uniform-over-multiset samples
/// against the adjacency slice of `g` at node u; fails the test when it
/// exceeds a generous df + 6 sqrt(2 df) band (fixed seed: regression).
template <typename Topo>
void expect_uniform_over_adjacency(const Topo& topo, const Graph& g,
                                   std::uint32_t u, rng::Xoshiro256pp& gen) {
  const auto slice = g.neighbors(u);
  ASSERT_GT(slice.size(), 0u);
  std::map<std::uint32_t, std::uint64_t> multiplicity;
  for (const std::uint32_t v : slice) {
    ++multiplicity[v];
  }
  const int draws = std::max<int>(4000, 300 * static_cast<int>(slice.size()));
  std::map<std::uint64_t, std::uint64_t> observed;
  for (int i = 0; i < draws; ++i) {
    ++observed[topo.random_neighbor(u, gen)];
  }
  // Every draw must be a real neighbor.
  for (const auto& [v, count] : observed) {
    ASSERT_TRUE(multiplicity.count(static_cast<std::uint32_t>(v)))
        << "sampled non-neighbor " << v << " from " << u;
  }
  double chi2 = 0.0;
  for (const auto& [v, mult] : multiplicity) {
    const double expected = static_cast<double>(draws) *
                            static_cast<double>(mult) /
                            static_cast<double>(slice.size());
    const auto it = observed.find(v);
    const double got =
        it == observed.end() ? 0.0 : static_cast<double>(it->second);
    chi2 += (got - expected) * (got - expected) / expected;
  }
  const double df = static_cast<double>(multiplicity.size()) - 1.0;
  EXPECT_LT(chi2, df + 6.0 * std::sqrt(2.0 * df) + 6.0)
      << "node " << u << ": chi2 " << chi2 << " over df " << df;
}

template <typename Topo>
void run_distribution_checks(const Topo& topo, const Graph& g) {
  rng::Xoshiro256pp gen(0xD1FF5EED);
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  for (const std::uint32_t u : {0u, 1u, n / 2, n - 2, n - 1}) {
    SCOPED_TRACE(u);
    expect_uniform_over_adjacency(topo, g, u, gen);
  }
}

// ---------------------------------------------------------------------
// Rgg2D
// ---------------------------------------------------------------------

TEST(ImplicitDifferential, Rgg2DMatchesMaterializedReference) {
  const Rgg2D rgg(196, 0.12, 4);
  const Graph g = materialize(rgg);  // verifies symmetry internally
  ASSERT_EQ(g.num_vertices(), 196u);
  ASSERT_GE(g.min_degree(), 1u);  // connected regime at this radius

  // Edge set: the implicit pairwise test must agree with the
  // materialized adjacency for every pair.
  for (std::uint32_t u = 0; u < 196; ++u) {
    std::set<std::uint32_t> adj(g.neighbors(u).begin(), g.neighbors(u).end());
    for (std::uint32_t v = u + 1; v < 196; ++v) {
      ASSERT_EQ(rgg.connected(u, v), adj.count(v) > 0)
          << "pair " << u << "," << v;
    }
  }
  // Degree sequence.
  for (std::uint32_t u = 0; u < 196; ++u) {
    ASSERT_EQ(rgg.degree_of(u), g.degree(u)) << "node " << u;
  }
  run_distribution_checks(rgg, g);
  // And the explicit reference itself samples the same distribution.
  const ExplicitTopology ref(g, "rgg2d-ref");
  run_distribution_checks(ref, g);
}

// ---------------------------------------------------------------------
// Gnp
// ---------------------------------------------------------------------

TEST(ImplicitDifferential, GnpMatchesMaterializedReference) {
  const Gnp gnp(150, 0.08, 4);
  const Graph g = materialize(gnp);
  ASSERT_EQ(g.num_vertices(), 150u);
  ASSERT_GE(g.min_degree(), 1u);  // no isolated node at this (p, seed)

  for (std::uint32_t u = 0; u < 150; ++u) {
    std::set<std::uint32_t> adj(g.neighbors(u).begin(), g.neighbors(u).end());
    for (std::uint32_t v = u + 1; v < 150; ++v) {
      ASSERT_EQ(gnp.connected(u, v), adj.count(v) > 0)
          << "pair " << u << "," << v;
    }
  }
  for (std::uint32_t u = 0; u < 150; ++u) {
    ASSERT_EQ(gnp.degree_of(u), g.degree(u)) << "node " << u;
  }
  run_distribution_checks(gnp, g);
  const ExplicitTopology ref(g, "gnp-ref");
  run_distribution_checks(ref, g);
}

// ---------------------------------------------------------------------
// Ba
// ---------------------------------------------------------------------

TEST(ImplicitDifferential, BaMatchesMaterializedReference) {
  const Ba ba(150, 3, 4);
  // Independent path 1: per-node enumeration (for_each_neighbor).
  const Graph g = materialize(ba);
  ASSERT_EQ(g.num_vertices(), 150u);
  // Independent path 2: the raw Batagelj–Brandes edge list.
  std::vector<std::pair<Graph::vertex, Graph::vertex>> edges;
  for (std::uint64_t j = 0; j < ba.num_edges(); ++j) {
    edges.emplace_back(static_cast<Graph::vertex>(ba.source_of(j)),
                       static_cast<Graph::vertex>(ba.target_of(j)));
  }
  const Graph direct = Graph::from_edges(150, edges);
  ASSERT_EQ(direct.num_edges(), g.num_edges());
  for (std::uint32_t u = 0; u < 150; ++u) {
    std::vector<std::uint32_t> a(g.neighbors(u).begin(), g.neighbors(u).end());
    std::vector<std::uint32_t> b(direct.neighbors(u).begin(),
                                 direct.neighbors(u).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "node " << u;
  }
  // Degree sequence (multigraph degrees, self-loops counted twice).
  for (std::uint32_t u = 0; u < 150; ++u) {
    ASSERT_EQ(ba.degree_of(u), g.degree(u)) << "node " << u;
  }
  // Every node attaches d edges, so degree >= d everywhere.
  EXPECT_GE(g.min_degree(), 3u);
  run_distribution_checks(ba, g);
  const ExplicitTopology ref(g, "ba-ref");
  run_distribution_checks(ref, g);
}

}  // namespace
}  // namespace antdense::graph
