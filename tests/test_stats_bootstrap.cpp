#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "stats/quantile.hpp"

namespace antdense::stats {
namespace {

TEST(BootstrapMeanCi, ContainsTrueMeanForCleanData) {
  rng::Xoshiro256pp gen(9);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng::uniform_real(gen, 0.0, 2.0));  // mean 1.0
  }
  const Interval ci = bootstrap_mean_ci(xs, 0.95, 500);
  EXPECT_TRUE(ci.contains(1.0)) << "[" << ci.lower << "," << ci.upper << "]";
  EXPECT_NEAR(ci.point, 1.0, 0.05);
  EXPECT_LT(ci.width(), 0.2);
}

TEST(BootstrapCi, CustomStatisticMedian) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) {
    xs.push_back(i);
  }
  const Interval ci = bootstrap_ci(
      xs, [](const std::vector<double>& v) { return median(v); }, 0.95, 300);
  EXPECT_TRUE(ci.contains(51.0));
  EXPECT_DOUBLE_EQ(ci.point, 51.0);
}

TEST(BootstrapCi, DeterministicInSeed) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Interval a = bootstrap_mean_ci(xs, 0.95, 200, 42);
  const Interval b = bootstrap_mean_ci(xs, 0.95, 200, 42);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapCi, RejectsBadInputs) {
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 3), std::invalid_argument);
}

TEST(WilsonInterval, CoversObservedProportion) {
  const Interval ci = wilson_interval(30, 100);
  EXPECT_TRUE(ci.contains(0.3));
  EXPECT_GT(ci.lower, 0.2);
  EXPECT_LT(ci.upper, 0.42);
}

TEST(WilsonInterval, ZeroSuccessesStillPositiveWidth) {
  const Interval ci = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_LT(ci.upper, 0.15);
}

TEST(WilsonInterval, AllSuccesses) {
  const Interval ci = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
  EXPECT_GT(ci.lower, 0.85);
}

TEST(WilsonInterval, HigherLevelIsWider) {
  const Interval narrow = wilson_interval(20, 100, 0.90);
  const Interval wide = wilson_interval(20, 100, 0.99);
  EXPECT_GT(wide.width(), narrow.width());
}

TEST(WilsonInterval, RejectsBadInputs) {
  EXPECT_THROW(wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5, 3), std::invalid_argument);
}

}  // namespace
}  // namespace antdense::stats
