// Property-based contract suite shared by all nine topology families —
// the invariants every substrate must honor regardless of how it stores
// (or refuses to store) its adjacency:
//
//   - neighbor indices stay in [0, num_nodes)
//   - repeated sampling from a node hits exactly its enumerated
//     neighbor set (support agreement between random_neighbor and
//     append_neighbors)
//   - a fixed seed fixes the walk (determinism)
//   - batched random_neighbors equals sequential calls draw-for-draw,
//     leaving the generator in the identical state (the BulkTopology
//     bit-stream contract the engines rely on)
//   - batched keys equals scalar keys
//
// Families are built through the scenario Registry, so this suite also
// exercises every registered spec string end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "graph/any_topology.hpp"
#include "rng/xoshiro256pp.hpp"
#include "scenario/registry.hpp"

namespace antdense {
namespace {

struct FamilyCase {
  const char* spec;
  bool regular;  // nominal degree() equals every node's true degree
};

const FamilyCase kFamilies[] = {
    {"torus2d:9x7", true},
    {"ring:101", true},
    {"hypercube:6", true},
    {"toruskd:3x4", true},
    {"complete:33", true},
    {"expander:d=4,n=60,seed=3", true},
    {"rgg2d:n=196,r=0.12,seed=4", false},
    {"gnp:n=120,p=0.07,seed=4", false},
    {"ba:n=120,d=3,seed=4", false},
};

graph::AnyTopology build(const FamilyCase& c) {
  return scenario::Registry::built_in().make(c.spec);
}

TEST(TopologyContract, NeighborIndicesStayInRange) {
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.spec);
    const graph::AnyTopology topo = build(c);
    rng::Xoshiro256pp gen(11);
    for (int i = 0; i < 500; ++i) {
      // Node handles may be packed coordinates (Torus2D); key() maps
      // them to dense indices, which is what must stay in range.
      const std::uint64_t u = topo.random_node(gen);
      ASSERT_LT(topo.key(u), topo.num_nodes());
      const std::uint64_t v = topo.random_neighbor(u, gen);
      ASSERT_LT(topo.key(v), topo.num_nodes());
    }
  }
}

TEST(TopologyContract, SamplingSupportMatchesEnumeratedNeighbors) {
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.spec);
    const graph::AnyTopology topo = build(c);
    rng::Xoshiro256pp gen(12);
    // Sample probe nodes through random_node — raw indices are not
    // necessarily valid handles for coordinate-packed families.
    std::set<std::uint64_t> probes;
    while (probes.size() < 3) {
      probes.insert(topo.random_node(gen));
    }
    for (const std::uint64_t u : probes) {
      std::vector<std::uint64_t> listed;
      topo.append_neighbors(u, listed);
      const std::set<std::uint64_t> expected(listed.begin(), listed.end());
      if (c.regular) {
        // Simple regular families: the multiset is the set and its size
        // is the nominal degree.
        EXPECT_EQ(listed.size(), topo.degree());
        EXPECT_EQ(expected.size(), listed.size());
      }
      const int draws =
          std::max<int>(4000, 60 * static_cast<int>(listed.size()));
      std::set<std::uint64_t> support;
      for (int i = 0; i < draws; ++i) {
        const std::uint64_t v = topo.random_neighbor(u, gen);
        if (expected.empty()) {
          // Isolated node (possible under gnp): must self-loop.
          EXPECT_EQ(v, u);
        } else {
          ASSERT_TRUE(expected.count(v))
              << "sampled " << v << " not a listed neighbor of " << u;
        }
        support.insert(v);
      }
      if (!expected.empty()) {
        EXPECT_EQ(support, expected)
            << "after " << draws << " draws from node " << u;
      }
    }
  }
}

TEST(TopologyContract, FixedSeedFixesTheWalk) {
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.spec);
    const graph::AnyTopology topo = build(c);
    constexpr std::uint64_t kSeed = 0xC0117AC7;
    std::vector<std::uint64_t> first;
    std::vector<std::uint64_t> second;
    for (auto* out : {&first, &second}) {
      rng::Xoshiro256pp gen(kSeed);
      std::uint64_t u = topo.random_node(gen);
      for (int i = 0; i < 200; ++i) {
        u = topo.random_neighbor(u, gen);
        out->push_back(u);
      }
    }
    EXPECT_EQ(first, second);
  }
}

TEST(TopologyContract, BatchedEqualsSequentialDrawForDraw) {
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.spec);
    const graph::AnyTopology topo = build(c);
    rng::Xoshiro256pp seeder(77);
    std::vector<std::uint64_t> nodes(137);
    for (auto& u : nodes) {
      u = topo.random_node(seeder);
    }
    rng::Xoshiro256pp batched_gen(0xBA7C4);
    rng::Xoshiro256pp sequential_gen(0xBA7C4);
    std::vector<std::uint64_t> batched(nodes.size());
    topo.random_neighbors(std::span<const std::uint64_t>(nodes),
                          std::span<std::uint64_t>(batched), batched_gen);
    std::vector<std::uint64_t> sequential(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      sequential[i] = topo.random_neighbor(nodes[i], sequential_gen);
    }
    EXPECT_EQ(batched, sequential);
    // Identical stream position afterwards: the next raw draw agrees.
    EXPECT_EQ(batched_gen(), sequential_gen());
  }
}

TEST(TopologyContract, BatchedKeysEqualScalarKeys) {
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.spec);
    const graph::AnyTopology topo = build(c);
    rng::Xoshiro256pp gen(5);
    std::vector<std::uint64_t> nodes(64);
    for (auto& u : nodes) {
      u = topo.random_node(gen);
    }
    std::vector<std::uint64_t> batched(nodes.size());
    topo.keys(std::span<const std::uint64_t>(nodes),
              std::span<std::uint64_t>(batched));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(batched[i], topo.key(nodes[i]));
    }
  }
}

}  // namespace
}  // namespace antdense
