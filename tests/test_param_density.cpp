// Property sweep (TEST_P): Algorithm 1 invariants over a grid of
// (density, rounds) configurations on the 2-D torus — unbiasedness
// within Monte Carlo error, estimate-granularity, determinism, and
// error shrinkage in t.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/torus2d.hpp"
#include "sim/density_sim.hpp"
#include "sim/trial_runner.hpp"
#include "stats/accumulator.hpp"

namespace antdense {
namespace {

struct DensityCase {
  std::uint32_t side;
  std::uint32_t agents;
  std::uint32_t rounds;
};

class DensitySweep : public ::testing::TestWithParam<DensityCase> {};

TEST_P(DensitySweep, UnbiasedWithinMonteCarloError) {
  const auto& p = GetParam();
  const graph::Torus2D torus(p.side, p.side);
  sim::DensityConfig cfg;
  cfg.num_agents = p.agents;
  cfg.rounds = p.rounds;
  const double d = static_cast<double>(p.agents - 1) /
                   static_cast<double>(torus.num_nodes());
  const auto estimates =
      sim::collect_all_agent_estimates(torus, cfg, 0xD0, 60, 2);
  stats::Accumulator acc;
  for (double e : estimates) {
    acc.add(e);
  }
  // Pooled agents within a trial are correlated; standard error from the
  // pooled count underestimates.  Use 8 sigma plus a floor.
  EXPECT_NEAR(acc.mean(), d, 8.0 * acc.standard_error() + 0.02 * d);
}

TEST_P(DensitySweep, EstimatesAreCountsOverRounds) {
  const auto& p = GetParam();
  const graph::Torus2D torus(p.side, p.side);
  sim::DensityConfig cfg;
  cfg.num_agents = p.agents;
  cfg.rounds = p.rounds;
  const auto result = sim::run_density_walk(torus, cfg, 0xD1);
  for (double e : result.estimates()) {
    const double scaled = e * p.rounds;
    EXPECT_GE(e, 0.0);
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

TEST_P(DensitySweep, DeterministicAcrossThreadCounts) {
  const auto& p = GetParam();
  const graph::Torus2D torus(p.side, p.side);
  sim::DensityConfig cfg;
  cfg.num_agents = p.agents;
  cfg.rounds = std::min(p.rounds, 64u);
  const auto one = sim::collect_all_agent_estimates(torus, cfg, 0xD2, 6, 1);
  const auto two = sim::collect_all_agent_estimates(torus, cfg, 0xD2, 6, 2);
  EXPECT_EQ(one, two);
}

TEST_P(DensitySweep, QuadruplingRoundsShrinksSpread) {
  const auto& p = GetParam();
  const graph::Torus2D torus(p.side, p.side);
  auto spread_at = [&](std::uint32_t t) {
    sim::DensityConfig cfg;
    cfg.num_agents = p.agents;
    cfg.rounds = t;
    const auto estimates =
        sim::collect_all_agent_estimates(torus, cfg, 0xD3, 10, 2);
    stats::Accumulator acc;
    for (double e : estimates) {
      acc.add(e);
    }
    return acc.sample_stddev();
  };
  EXPECT_LT(spread_at(p.rounds * 4), spread_at(p.rounds));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DensitySweep,
    ::testing::Values(DensityCase{16, 8, 64},     // sparse, small
                      DensityCase{16, 52, 64},    // d ~ 0.2, small
                      DensityCase{32, 52, 128},   // d ~ 0.05
                      DensityCase{32, 205, 128},  // d ~ 0.2
                      DensityCase{64, 205, 256},  // d ~ 0.05, larger A
                      DensityCase{64, 820, 256}),  // d ~ 0.2, larger A
    [](const ::testing::TestParamInfo<DensityCase>& param_info) {
      return "side" + std::to_string(param_info.param.side) + "_agents" +
             std::to_string(param_info.param.agents) + "_t" +
             std::to_string(param_info.param.rounds);
    });

}  // namespace
}  // namespace antdense
