#include "graph/torus2d.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

TEST(Torus2D, BasicProperties) {
  const Torus2D t(8, 16);
  EXPECT_EQ(t.num_nodes(), 128u);
  EXPECT_EQ(t.degree(), 4u);
  EXPECT_EQ(t.width(), 8u);
  EXPECT_EQ(t.height(), 16u);
}

TEST(Torus2D, SquareFactory) {
  const Torus2D t = Torus2D::square(32);
  EXPECT_EQ(t.num_nodes(), 1024u);
  EXPECT_EQ(t.width(), t.height());
}

TEST(Torus2D, RejectsDegenerateSizes) {
  EXPECT_THROW(Torus2D(1, 8), std::invalid_argument);
  EXPECT_THROW(Torus2D(8, 0), std::invalid_argument);
}

TEST(Torus2D, PackUnpackRoundTrip) {
  const auto u = Torus2D::pack(5, 11);
  EXPECT_EQ(Torus2D::x_of(u), 5u);
  EXPECT_EQ(Torus2D::y_of(u), 11u);
}

TEST(Torus2D, MakeNodeValidates) {
  const Torus2D t(4, 4);
  EXPECT_NO_THROW(t.make_node(3, 3));
  EXPECT_THROW(t.make_node(4, 0), std::invalid_argument);
  EXPECT_THROW(t.make_node(0, 4), std::invalid_argument);
}

TEST(Torus2D, StepsWrapAroundBothAxes) {
  const Torus2D t(4, 4);
  // +x from x=3 wraps to 0.
  EXPECT_EQ(Torus2D::x_of(t.step(Torus2D::pack(3, 2), 0)), 0u);
  // -x from x=0 wraps to 3.
  EXPECT_EQ(Torus2D::x_of(t.step(Torus2D::pack(0, 2), 1)), 3u);
  // +y from y=3 wraps to 0.
  EXPECT_EQ(Torus2D::y_of(t.step(Torus2D::pack(1, 3), 2)), 0u);
  // -y from y=0 wraps to 3.
  EXPECT_EQ(Torus2D::y_of(t.step(Torus2D::pack(1, 0), 3)), 3u);
}

TEST(Torus2D, StepMovesExactlyOneAxis) {
  const Torus2D t(8, 8);
  const auto u = Torus2D::pack(4, 4);
  for (int dir = 0; dir < 4; ++dir) {
    const auto v = t.step(u, dir);
    EXPECT_EQ(t.l1_distance(u, v), 1u) << "dir=" << dir;
  }
}

TEST(Torus2D, KeyIsDenseAndUnique) {
  const Torus2D t(5, 3);
  std::set<std::uint64_t> keys;
  for (std::uint32_t y = 0; y < 3; ++y) {
    for (std::uint32_t x = 0; x < 5; ++x) {
      const auto key = t.key(Torus2D::pack(x, y));
      EXPECT_LT(key, t.num_nodes());
      keys.insert(key);
    }
  }
  EXPECT_EQ(keys.size(), t.num_nodes());
}

TEST(Torus2D, RandomNeighborIsAdjacentUniform) {
  const Torus2D t(16, 16);
  rng::Xoshiro256pp gen(3);
  const auto u = Torus2D::pack(7, 9);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = t.random_neighbor(u, gen);
    EXPECT_EQ(t.l1_distance(u, v), 1u);
    ++counts[t.key(v)];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.01);
  }
}

TEST(Torus2D, RandomNodeUniform) {
  const Torus2D t(4, 4);
  rng::Xoshiro256pp gen(4);
  std::vector<int> counts(16, 0);
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[t.key(t.random_node(gen))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 1.0 / 16.0, 0.005);
  }
}

TEST(Torus2D, L1DistanceWrapAware) {
  const Torus2D t(10, 10);
  EXPECT_EQ(t.l1_distance(Torus2D::pack(0, 0), Torus2D::pack(9, 0)), 1u);
  EXPECT_EQ(t.l1_distance(Torus2D::pack(0, 0), Torus2D::pack(5, 0)), 5u);
  EXPECT_EQ(t.l1_distance(Torus2D::pack(0, 0), Torus2D::pack(9, 9)), 2u);
  EXPECT_EQ(t.l1_distance(Torus2D::pack(2, 3), Torus2D::pack(2, 3)), 0u);
}

TEST(Torus2D, ForEachNeighborYieldsFourDistinct) {
  const Torus2D t(8, 8);
  std::set<std::uint64_t> seen;
  t.for_each_neighbor(Torus2D::pack(2, 2),
                      [&](Torus2D::node_type v) { seen.insert(t.key(v)); });
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Torus2D, NameMentionsDimensions) {
  EXPECT_EQ(Torus2D(8, 4).name(), "torus2d(8x4)");
}

}  // namespace
}  // namespace antdense::graph
