// Degree-distribution sanity for the implicit families, checked against
// their defining models at statistically meaningful sizes (fixed seeds:
// regression tests, not flaky statistics).
//
//   - Gnp: degrees are Binomial(n-1, p) — sample mean within 4 standard
//     errors, sample variance within a generous band of the binomial's.
//   - Ba: the classic power law — mean degree exactly 2d (handshake
//     invariant), and the empirical CCDF has tail exponent ~2 (density
//     exponent ~3), checked via CCDF halving ratios
//     P(D >= k) / P(D >= 2k) ~ 4 in the Batagelj–Brandes model.
//   - Rgg2D: expected degree in a band around pi r^2 n, with spread no
//     larger than the binomial's (stratified placement only shrinks it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/ba.hpp"
#include "graph/gnp.hpp"
#include "graph/rgg2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::graph {
namespace {

TEST(ImplicitDegreeStats, GnpDegreesAreBinomial) {
  constexpr std::uint64_t kN = 3000;
  constexpr double kP = 0.01;
  const Gnp gnp(kN, kP, 2026);
  stats::Accumulator acc;
  for (std::uint64_t u = 0; u < kN; ++u) {
    acc.add(static_cast<double>(gnp.degree_of(u)));
  }
  const double mean = (kN - 1) * kP;
  const double variance = (kN - 1) * kP * (1.0 - kP);
  EXPECT_NEAR(acc.mean(), mean, 4.0 * std::sqrt(variance / kN))
      << "sample mean " << acc.mean();
  EXPECT_GT(acc.sample_variance(), 0.85 * variance);
  EXPECT_LT(acc.sample_variance(), 1.15 * variance);
}

TEST(ImplicitDegreeStats, BaDegreesFollowThePowerLaw) {
  constexpr std::uint64_t kN = 20000;
  constexpr std::uint64_t kD = 4;
  const Ba ba(kN, kD, 2026);
  // One O(m) pass over the edge list gives every degree (each edge
  // contributes both endpoints; a self-loop counts twice) — the same
  // convention as Ba::degree_of without its per-node scan.
  std::vector<std::uint32_t> degree(kN, 0);
  for (std::uint64_t j = 0; j < ba.num_edges(); ++j) {
    ++degree[ba.source_of(j)];
    ++degree[ba.target_of(j)];
  }
  // Handshake invariant: mean degree is exactly 2d.
  std::uint64_t total = 0;
  for (const std::uint32_t d : degree) {
    total += d;
  }
  EXPECT_EQ(total, 2 * ba.num_edges());

  // Tail: in the BB model P(D >= k) ~ d(d+1) / (k(k+1)), so halving
  // ratios P(D >= k) / P(D >= 2k) sit near (2k)(2k+1)/(k(k+1)) ~ 4 —
  // i.e. CCDF exponent 2, density exponent 3.  A geometric-ish tail
  // (exponent drift) pushes these ratios far outside the band.
  const auto ccdf_count = [&](std::uint32_t k) {
    std::uint64_t count = 0;
    for (const std::uint32_t d : degree) {
      count += d >= k ? 1 : 0;
    }
    return count;
  };
  for (const std::uint32_t k : {8u, 16u}) {
    const auto at_k = static_cast<double>(ccdf_count(k));
    const auto at_2k = static_cast<double>(ccdf_count(2 * k));
    ASSERT_GT(at_2k, 50.0) << "tail too thin to measure at k=" << 2 * k;
    const double ratio = at_k / at_2k;
    EXPECT_GT(ratio, 3.0) << "k=" << k;
    EXPECT_LT(ratio, 5.0) << "k=" << k;
  }
  // The hubs are real: the maximum degree dwarfs the mean.
  std::uint32_t max_degree = 0;
  for (const std::uint32_t d : degree) {
    max_degree = std::max(max_degree, d);
  }
  EXPECT_GT(max_degree, 20 * kD);
}

TEST(ImplicitDegreeStats, Rgg2DDegreesSitInThePiR2NBand) {
  constexpr std::uint64_t kN = 10000;
  constexpr double kR = 0.05;
  const Rgg2D rgg(kN, kR, 2026);
  stats::Accumulator acc;
  std::uint64_t isolated = 0;
  for (std::uint64_t u = 0; u < kN; ++u) {
    const std::uint64_t d = rgg.degree_of(u);
    acc.add(static_cast<double>(d));
    isolated += d == 0 ? 1 : 0;
  }
  const double expected = 3.14159265358979323846 * kR * kR * kN;
  EXPECT_GT(acc.mean(), 0.93 * expected);
  EXPECT_LT(acc.mean(), 1.07 * expected);
  // Stratified placement shrinks the spread far below the i.i.d.
  // binomial's: interior cells of the ball are hit deterministically,
  // so only the ~2 pi r s perimeter cells contribute variance.  The
  // spread must be well under the binomial yet clearly non-degenerate.
  const double binomial_sd =
      std::sqrt(expected * (1.0 - 3.14159265358979323846 * kR * kR));
  EXPECT_LT(std::sqrt(acc.sample_variance()), 0.6 * binomial_sd);
  EXPECT_GT(std::sqrt(acc.sample_variance()), 1.0);
  // Supercritical regime: nobody is isolated.
  EXPECT_EQ(isolated, 0u);
  // And the nominal degree() advertises the same band.
  EXPECT_NEAR(static_cast<double>(rgg.degree()), expected, 1.0);
}

}  // namespace
}  // namespace antdense::graph
