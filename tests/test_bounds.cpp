#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace antdense::core {
namespace {

TEST(BetaCurves, Torus2DFormula) {
  EXPECT_DOUBLE_EQ(beta_torus2d(0, 100), 1.0 + 0.01);
  EXPECT_DOUBLE_EQ(beta_torus2d(9, 100), 0.1 + 0.01);
}

TEST(BetaCurves, RingDecaysSlower) {
  for (std::uint32_t m : {3u, 15u, 63u}) {
    EXPECT_GT(beta_ring(m, 1u << 20), beta_torus2d(m, 1u << 20));
  }
}

TEST(BetaCurves, HigherDimensionDecaysFaster) {
  for (std::uint32_t m : {3u, 15u, 63u}) {
    EXPECT_LT(beta_torus_kd(m, 3, 1u << 20), beta_torus2d(m, 1u << 20));
    EXPECT_LT(beta_torus_kd(m, 4, 1u << 20), beta_torus_kd(m, 3, 1u << 20));
  }
}

TEST(BetaCurves, ExpanderGeometric) {
  EXPECT_DOUBLE_EQ(beta_expander(0, 0.5, 1u << 20), 1.0 + std::pow(2.0, -20));
  EXPECT_DOUBLE_EQ(beta_expander(10, 0.5, 1u << 20),
                   std::pow(0.5, 10) + 1.0 / (1u << 20));
  EXPECT_THROW(beta_expander(1, 1.5, 100), std::invalid_argument);
}

TEST(BetaCurves, HypercubeFloorIsSqrtA) {
  const std::uint64_t a = 1u << 16;
  EXPECT_NEAR(beta_hypercube(1000, a), 1.0 / 256.0, 1e-9);
}

TEST(BOfT, Torus2DIsHarmonic) {
  // B(t) = sum 1/(m+1) + (t+1)/A ~ H_{t+1}.
  const double b = b_torus2d(1000, 1u << 30);
  EXPECT_NEAR(b, std::log(1001.0) + 0.5772, 0.01);
}

TEST(BOfT, RingIsSqrt) {
  const double b = b_ring(10000, 1u << 30);
  // sum_{m=0}^{t} (m+1)^{-1/2} ~ 2 sqrt(t).
  EXPECT_NEAR(b, 2.0 * std::sqrt(10001.0), 3.0);
}

TEST(BOfT, K3IsBounded) {
  // Constant for k >= 3: zeta(3/2) ≈ 2.612.
  EXPECT_NEAR(b_torus_kd(100000, 3, 1ull << 40), 2.612, 0.05);
}

TEST(BOfT, ExpanderIsGeometricSeries) {
  EXPECT_NEAR(b_expander(10000, 0.5, 1ull << 40), 2.0, 0.01);
}

TEST(BOfT, HypercubeIsConstantPlusFloor) {
  const std::uint64_t a = 1ull << 30;
  const double b = b_hypercube(1000, a);
  // 1 + sum_{m>=1} 0.9^{m-1} = 1 + 10 = 11 plus tiny floor term.
  EXPECT_NEAR(b, 11.0, 0.15);
}

TEST(Theorem1Epsilon, ShrinksWithTAndD) {
  EXPECT_GT(theorem1_epsilon(1000, 0.01, 0.05),
            theorem1_epsilon(10000, 0.01, 0.05));
  EXPECT_GT(theorem1_epsilon(1000, 0.01, 0.05),
            theorem1_epsilon(1000, 0.1, 0.05));
}

TEST(Theorem1Epsilon, GrowsWithConfidence) {
  EXPECT_LT(theorem1_epsilon(1000, 0.01, 0.1),
            theorem1_epsilon(1000, 0.01, 0.001));
}

TEST(Theorem1Epsilon, MatchesFormula) {
  const double eps = theorem1_epsilon(512, 0.05, 0.1, 2.0);
  EXPECT_NEAR(eps,
              2.0 * std::sqrt(std::log(10.0) / (512 * 0.05)) *
                  std::log(1024.0),
              1e-12);
}

TEST(Theorem1Rounds, InverseRelationApproximatelyHolds) {
  // Rounds from the bound should deliver at most the requested epsilon
  // when plugged back into the epsilon form (up to the log(2t) vs
  // [loglog + log(1/de)]^2 slack — allow factor 4).
  const double eps = 0.2, d = 0.05, delta = 0.05;
  const std::uint64_t t = theorem1_rounds(eps, d, delta);
  const double eps_back =
      theorem1_epsilon(static_cast<std::uint32_t>(t), d, delta);
  EXPECT_LT(eps_back, 4.0 * eps);
}

TEST(Theorem1Rounds, ScalesInverseSquareEpsilon) {
  const std::uint64_t loose = theorem1_rounds(0.2, 0.01, 0.05);
  const std::uint64_t tight = theorem1_rounds(0.1, 0.01, 0.05);
  // Quadratic in 1/eps plus log^2 factor: ratio in [4, 8].
  const double ratio =
      static_cast<double>(tight) / static_cast<double>(loose);
  EXPECT_GT(ratio, 3.9);
  EXPECT_LT(ratio, 8.0);
}

TEST(Lemma19Epsilon, ReducesToTheorem1WithLogB) {
  const std::uint32_t t = 4096;
  const double d = 0.02, delta = 0.05;
  const double b = std::log(2.0 * t);
  EXPECT_NEAR(lemma19_epsilon(t, d, delta, b),
              theorem1_epsilon(t, d, delta), 1e-12);
}

TEST(Theorem21Ring, EpsilonIndependentOfLogDelta) {
  // Chebyshev analysis: linear in 1/delta, fourth-root in t.
  const double e1 = theorem21_epsilon_ring(10000, 0.05, 0.1);
  const double e2 = theorem21_epsilon_ring(160000, 0.05, 0.1);
  EXPECT_NEAR(e1 / e2, 2.0, 1e-9);  // t^{1/4} scaling: 16^{1/4}=2
}

TEST(Theorem21Rounds, QuadraticallyWorseThanTheorem1) {
  const std::uint64_t ring = theorem21_rounds_ring(0.1, 0.05, 0.1);
  const std::uint64_t torus = theorem1_rounds(0.1, 0.05, 0.1);
  EXPECT_GT(ring, torus);
}

TEST(IndependentSampling, ChernoffForms) {
  const double eps = independent_sampling_epsilon(1000, 0.05, 0.05);
  EXPECT_NEAR(eps, std::sqrt(6.0 * std::log(40.0) / (1000 * 0.05)), 1e-12);
  const std::uint64_t t = independent_sampling_rounds(0.1, 0.05, 0.05);
  EXPECT_EQ(t, static_cast<std::uint64_t>(std::ceil(
                   3.0 * std::log(40.0) / (0.05 * 0.01))));
}

TEST(Theorem27, BudgetScalesLinearlyInV) {
  const double small = theorem27_n2t(0.1, 0.1, 5.0, 4.0, 1000);
  const double large = theorem27_n2t(0.1, 0.1, 5.0, 4.0, 10000);
  EXPECT_NEAR(large / small, 10.0, 1e-9);
}

TEST(Theorem27, EpsilonInvertsN2T) {
  const double eps =
      theorem27_epsilon(1000, 50, 0.1, 5.0, 4.0, 10000);
  ASSERT_LT(eps, 1.0);
  const double budget = theorem27_n2t(eps, 0.1, 5.0, 4.0, 10000);
  EXPECT_NEAR(budget, 1000.0 * 1000.0 * 50.0, 1.0);
}

TEST(Theorem31, WalksFormula) {
  EXPECT_EQ(theorem31_walks(0.1, 0.1, 8.0, 2.0),
            static_cast<std::uint64_t>(std::ceil(4.0 / (0.01 * 0.1))));
  EXPECT_THROW(theorem31_walks(0.1, 0.1, 1.0, 2.0), std::invalid_argument);
}

TEST(BurnInRounds, MatchesSpectralFormula) {
  EXPECT_EQ(burn_in_rounds(1000, 0.1, 0.5),
            static_cast<std::uint64_t>(std::ceil(std::log(10000.0) / 0.5)));
}

TEST(AllBounds, RejectInvalidParameters) {
  EXPECT_THROW(theorem1_epsilon(0, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(theorem1_epsilon(10, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(theorem1_epsilon(10, 0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(theorem1_rounds(0.0, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(theorem1_rounds(1.0, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(theorem27_n2t(0.1, 0.1, -1.0, 4.0, 10), std::invalid_argument);
  EXPECT_THROW(burn_in_rounds(10, 0.1, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace antdense::core
