// TraceRecorder (obs/trace.hpp): Chrome trace-event JSON
// well-formedness, the byte-capped ring's oldest-first eviction, span
// nesting on the timeline, and the null-recorder no-op contract.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"

namespace antdense::obs {
namespace {

TEST(ObsTrace, EmitsWellFormedChromeTraceJson) {
  TraceRecorder trace;
  trace.add_complete("step", "engine", 10.0, 5.0);
  trace.add_complete("observe", "engine", 16.0, 2.0,
                     "{\"round\":3}");
  EXPECT_EQ(trace.event_count(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);

  // dump() must parse back as strict JSON with the catapult shape.
  const util::JsonValue doc = util::JsonValue::parse(trace.dump());
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const auto& events = doc.find("traceEvents")->items();
  ASSERT_EQ(events.size(), 2u);
  const util::JsonValue& first = events[0];
  EXPECT_EQ(first.find("name")->as_string(), "step");
  EXPECT_EQ(first.find("cat")->as_string(), "engine");
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_EQ(first.find("ts")->as_double(), 10.0);
  EXPECT_EQ(first.find("dur")->as_double(), 5.0);
  EXPECT_EQ(first.find("pid")->as_uint(), 1u);
  ASSERT_NE(first.find("tid"), nullptr);
  // args round-trip as a JSON object, not as an escaped string.
  const util::JsonValue& second = events[1];
  ASSERT_NE(second.find("args"), nullptr);
  EXPECT_EQ(second.find("args")->find("round")->as_uint(), 3u);
}

TEST(ObsTrace, ByteCapDropsOldestEventsFirst) {
  // A cap small enough that a few hundred events must overflow it.
  TraceRecorder trace(/*max_bytes=*/4096);
  for (int i = 0; i < 500; ++i) {
    trace.add_complete("event-" + std::to_string(i), "test",
                       static_cast<double>(i), 1.0);
  }
  EXPECT_GT(trace.dropped(), 0u);
  EXPECT_LT(trace.event_count(), 500u);
  EXPECT_EQ(trace.event_count() + trace.dropped(), 500u);

  const util::JsonValue doc = trace.to_json();
  EXPECT_EQ(doc.find("droppedEvents")->as_uint(), trace.dropped());
  const auto& events = doc.find("traceEvents")->items();
  // Survivors are the most recent events, still in order.
  EXPECT_EQ(events.back().find("name")->as_string(), "event-499");
  double prev_ts = -1.0;
  for (const util::JsonValue& e : events) {
    EXPECT_GT(e.find("ts")->as_double(), prev_ts);
    prev_ts = e.find("ts")->as_double();
  }
}

TEST(ObsTrace, SpanScopesNestOnTheTimeline) {
  TraceRecorder trace;
  {
    SpanScope outer(&trace, "outer", "test");
    {
      SpanScope inner(&trace, "inner", "test");
      inner.set_args("{\"k\":1}");
    }
  }
  // Inner destructs first, so it is recorded first.
  const util::JsonValue doc = trace.to_json();
  const auto& events = doc.find("traceEvents")->items();
  ASSERT_EQ(events.size(), 2u);
  const util::JsonValue& inner = events[0];
  const util::JsonValue& outer = events[1];
  EXPECT_EQ(inner.find("name")->as_string(), "inner");
  EXPECT_EQ(outer.find("name")->as_string(), "outer");
  // The outer span must fully contain the inner one.
  const double inner_start = inner.find("ts")->as_double();
  const double inner_end = inner_start + inner.find("dur")->as_double();
  const double outer_start = outer.find("ts")->as_double();
  const double outer_end = outer_start + outer.find("dur")->as_double();
  EXPECT_LE(outer_start, inner_start);
  EXPECT_GE(outer_end, inner_end);
  EXPECT_EQ(inner.find("args")->find("k")->as_uint(), 1u);
}

TEST(ObsTrace, NullRecorderSpanIsANoOp) {
  // Must not crash, allocate the strings, or record anywhere.
  SpanScope span(nullptr, "ghost", "test");
  span.set_args("{\"ignored\":true}");
}

TEST(ObsTrace, EmptyRecorderStillDumpsAValidDocument) {
  TraceRecorder trace;
  const util::JsonValue doc = util::JsonValue::parse(trace.dump());
  EXPECT_EQ(doc.find("traceEvents")->items().size(), 0u);
  EXPECT_EQ(doc.find("droppedEvents"), nullptr);
}

}  // namespace
}  // namespace antdense::obs
