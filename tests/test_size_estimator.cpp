#include "netsize/size_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "stats/quantile.hpp"

namespace antdense::netsize {
namespace {

using graph::Graph;

SizeEstimationConfig idealized(std::uint32_t walks, std::uint32_t rounds) {
  SizeEstimationConfig cfg;
  cfg.num_walks = walks;
  cfg.rounds = rounds;
  cfg.start_stationary = true;
  return cfg;
}

TEST(SizeEstimator, ValidatesConfig) {
  const Graph g = graph::make_ring_graph(10);
  SizeEstimationConfig cfg;
  cfg.num_walks = 1;
  cfg.rounds = 5;
  EXPECT_THROW(estimate_network_size(g, cfg, 1), std::invalid_argument);
  cfg.num_walks = 4;
  cfg.rounds = 0;
  EXPECT_THROW(estimate_network_size(g, cfg, 1), std::invalid_argument);
  cfg.rounds = 2;
  cfg.seed_vertex = 99;
  EXPECT_THROW(estimate_network_size(g, cfg, 1), std::invalid_argument);
}

TEST(SizeEstimator, DeterministicInSeed) {
  const Graph g = graph::make_torus_kd_graph(3, 6);
  const auto a = estimate_network_size(g, idealized(64, 32), 7);
  const auto b = estimate_network_size(g, idealized(64, 32), 7);
  EXPECT_DOUBLE_EQ(a.size_estimate, b.size_estimate);
}

TEST(SizeEstimator, MedianEstimateNearTruthOnSmallTorus) {
  const Graph g = graph::make_torus_kd_graph(3, 6);  // 216 vertices
  std::vector<double> estimates;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    const auto r = estimate_network_size(g, idealized(48, 64), 100 + trial);
    if (r.saw_collision) {
      estimates.push_back(r.size_estimate);
    }
  }
  ASSERT_GT(estimates.size(), 50u);
  EXPECT_NEAR(stats::median(estimates), 216.0, 45.0);
}

TEST(SizeEstimator, UnbiasedCollisionStatistic) {
  // Lemma 28: E[C] = 1/|V|.  Average C over many trials.
  const Graph g = graph::make_random_regular_graph(128, 6, 31);
  double total = 0.0;
  constexpr int kTrials = 200;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const auto r = estimate_network_size(g, idealized(32, 32), 300 + trial);
    total += r.collision_statistic;
  }
  EXPECT_NEAR(total / kTrials, 1.0 / 128.0, 0.0012);
}

TEST(SizeEstimator, WorksOnIrregularGraphs) {
  // BA graph: heavy degree skew exercises the 1/deg weighting.
  const Graph g = graph::make_barabasi_albert_graph(400, 3, 41);
  std::vector<double> estimates;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const auto r = estimate_network_size(g, idealized(64, 64), 500 + trial);
    if (r.saw_collision) {
      estimates.push_back(r.size_estimate);
    }
  }
  ASSERT_GT(estimates.size(), 40u);
  EXPECT_NEAR(stats::median(estimates), 400.0, 100.0);
}

TEST(SizeEstimator, BurnInModeCountsQueries) {
  const Graph g = graph::make_torus_kd_graph(3, 5);
  SizeEstimationConfig cfg;
  cfg.num_walks = 10;
  cfg.rounds = 20;
  cfg.burn_in = 30;
  cfg.seed_vertex = 0;
  const auto r = estimate_network_size(g, cfg, 9);
  // n*(M+t) queries: 10 * (30+20).
  EXPECT_EQ(r.link_queries, 500u);
}

TEST(SizeEstimator, StationaryModeCostsOnlyRounds) {
  const Graph g = graph::make_torus_kd_graph(3, 5);
  const auto r = estimate_network_size(g, idealized(10, 20), 10);
  EXPECT_EQ(r.link_queries, 200u);
}

TEST(SizeEstimator, NoCollisionsGiveInfiniteEstimate) {
  // Two walks, one round, large graph: collision essentially impossible.
  const Graph g = graph::make_torus_kd_graph(3, 12);  // 1728 vertices
  SizeEstimationConfig cfg = idealized(2, 1);
  const auto r = estimate_network_size(g, cfg, 11);
  EXPECT_FALSE(r.saw_collision);
  EXPECT_TRUE(std::isinf(r.size_estimate));
}

TEST(SizeEstimator, ProvidedAverageDegreeUsedVerbatim) {
  const Graph g = graph::make_ring_graph(32);
  SizeEstimationConfig cfg = idealized(16, 16);
  cfg.average_degree = 2.0;
  const auto r = estimate_network_size(g, cfg, 12);
  EXPECT_DOUBLE_EQ(r.average_degree_used, 2.0);
}

TEST(SizeEstimatorMedian, AggregatesRepetitions) {
  const Graph g = graph::make_torus_kd_graph(3, 6);
  const auto r =
      estimate_network_size_median(g, idealized(48, 64), 9, 13);
  EXPECT_TRUE(r.saw_collision);
  EXPECT_NEAR(r.size_estimate, 216.0, 60.0);
  EXPECT_EQ(r.link_queries, 9u * 48u * 64u);
}

}  // namespace
}  // namespace antdense::netsize
