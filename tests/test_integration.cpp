// End-to-end integration tests spanning modules: estimator + bounds on
// every topology; the full network-size pipeline (burn-in + Algorithm 3 +
// Algorithm 2) on a crawled graph; Monte Carlo engine vs exact spectral
// evolution.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/density_estimator.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "netsize/size_estimator.hpp"
#include "rng/xoshiro256pp.hpp"
#include "spectral/walk_matrix.hpp"
#include "stats/concentration.hpp"
#include "stats/quantile.hpp"
#include "walk/random_walk.hpp"

namespace antdense {
namespace {

// --- Algorithm 1 across all five lattice topologies -----------------------
// Each topology gets an (A, agents, t) sized so the 90%-quantile of the
// relative error is comfortably below the checked epsilon.

template <graph::Topology T>
double measured_eps90(const T& topo, std::uint32_t agents, std::uint32_t t,
                      std::uint64_t seed, int runs = 3) {
  std::vector<double> all;
  double d = 0.0;
  for (int r = 0; r < runs; ++r) {
    const auto result =
        core::estimate_density(topo, agents, t, seed + static_cast<std::uint64_t>(r));
    d = result.true_density;
    all.insert(all.end(), result.estimates.begin(), result.estimates.end());
  }
  return stats::epsilon_at_confidence(all, d, 0.9);
}

TEST(EndToEndDensity, Torus2D) {
  // Theorem 1 at (t=2048, d~0.1, delta=0.1) allows eps ~ 0.9 with c1=1;
  // the measured process is much better — pin it under 0.3.
  const graph::Torus2D topo(64, 64);
  EXPECT_LT(measured_eps90(topo, 410, 2048, 1), 0.3);
}

TEST(EndToEndDensity, Ring) {
  // Theorem 21 at (t=8192, d~0.1, delta=0.1) gives eps ~ 1.05 with c=1;
  // measured ~0.65.  Pin under 0.8 — and far above the torus (see the
  // ordering test below).
  const graph::Ring topo(4096);
  EXPECT_LT(measured_eps90(topo, 410, 8192, 2), 0.8);
}

TEST(EndToEndDensity, Torus3D) {
  const graph::TorusKD topo(3, 16);  // 4096 nodes
  EXPECT_LT(measured_eps90(topo, 410, 2048, 3), 0.2);
}

TEST(EndToEndDensity, Hypercube) {
  const graph::Hypercube topo(12);  // 4096 nodes
  EXPECT_LT(measured_eps90(topo, 410, 2048, 4), 0.2);
}

TEST(EndToEndDensity, CompleteGraph) {
  const graph::CompleteGraph topo(4096);
  EXPECT_LT(measured_eps90(topo, 410, 2048, 5), 0.2);
}

TEST(EndToEndDensity, RandomRegularExpander) {
  const graph::Graph g = graph::make_random_regular_graph(4096, 8, 99);
  const graph::ExplicitTopology topo(g, "expander");
  EXPECT_LT(measured_eps90(topo, 410, 2048, 6), 0.2);
}

TEST(EndToEndDensity, AccuracyOrderingMatchesTheory) {
  // At equal (A, n, t) the ring must be worst; complete and hypercube
  // and 3-D torus should beat the 2-D torus's log factor (allow ties).
  const std::uint32_t agents = 410, t = 1024;
  const double ring = measured_eps90(graph::Ring(4096), agents, t, 7);
  const double torus2 =
      measured_eps90(graph::Torus2D(64, 64), agents, t, 7);
  const double complete =
      measured_eps90(graph::CompleteGraph(4096), agents, t, 7);
  EXPECT_GT(ring, torus2);
  EXPECT_GE(torus2 * 1.05, complete);  // torus no better than complete
}

// --- Engine vs exact spectral evolution ------------------------------------

TEST(EngineVsSpectral, WalkOccupancyMatchesMatrixPower) {
  // Distribution of a walker after m steps from vertex 0 on an explicit
  // torus must match e_0 W^m within Monte Carlo tolerance.
  const graph::Graph g = graph::make_torus2d_graph(5, 5);
  const graph::ExplicitTopology topo(g, "torus");
  constexpr std::uint32_t kSteps = 7;
  constexpr int kTrials = 200000;
  std::vector<double> empirical(25, 0.0);
  rng::Xoshiro256pp gen(11);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto end = walk::walk_steps(topo, 0u, kSteps, gen);
    empirical[end] += 1.0 / kTrials;
  }
  std::vector<double> exact(25, 0.0);
  exact[0] = 1.0;
  exact = spectral::evolve(g, exact, kSteps);
  EXPECT_LT(spectral::tv_distance(empirical, exact), 0.01);
}

// --- Full network-size pipeline --------------------------------------------

TEST(NetsizePipeline, CrawledBarabasiAlbert) {
  // Crawl-style: seed vertex, burn-in from measured lambda, Algorithm 3
  // degree estimate, Algorithm 2 size estimate, median over repetitions.
  const graph::Graph g = graph::make_barabasi_albert_graph(600, 3, 123);
  const double lambda = spectral::second_eigenvalue_magnitude(g);
  ASSERT_LT(lambda, 1.0);
  netsize::SizeEstimationConfig cfg;
  cfg.num_walks = 80;
  cfg.rounds = 80;
  cfg.burn_in = static_cast<std::uint32_t>(
      core::burn_in_rounds(g.num_edges(), 0.1, lambda));
  cfg.seed_vertex = 0;
  const auto r = netsize::estimate_network_size_median(g, cfg, 7, 321);
  ASSERT_TRUE(r.saw_collision);
  EXPECT_NEAR(r.size_estimate, 600.0, 150.0);
  EXPECT_EQ(r.link_queries, 7ull * 80ull * (cfg.burn_in + cfg.rounds));
}

TEST(NetsizePipeline, WalkLengthVsWalkCountTradeoff) {
  // Theorem 27: accuracy depends on n^2 t.  A configuration with fewer
  // walks but longer counting (same n^2 t) should deliver comparable
  // error — the paper's headline tradeoff.
  const graph::Graph g = graph::make_torus_kd_graph(3, 8);  // 512 vertices
  auto run_median_err = [&](std::uint32_t walks, std::uint32_t rounds,
                            std::uint64_t seed) {
    std::vector<double> errs;
    for (std::uint64_t trial = 0; trial < 40; ++trial) {
      netsize::SizeEstimationConfig cfg;
      cfg.num_walks = walks;
      cfg.rounds = rounds;
      cfg.start_stationary = true;
      const auto r =
          netsize::estimate_network_size(g, cfg, seed + trial);
      if (r.saw_collision) {
        errs.push_back(std::fabs(r.size_estimate - 512.0) / 512.0);
      }
    }
    return stats::median(errs);
  };
  const double wide = run_median_err(64, 16, 1000);   // n²t = 65536
  const double deep = run_median_err(16, 256, 2000);  // n²t = 65536
  EXPECT_LT(deep, 3.0 * wide + 0.05);
  EXPECT_LT(wide, 3.0 * deep + 0.05);
}

}  // namespace
}  // namespace antdense
