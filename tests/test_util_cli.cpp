#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace antdense::util {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full;
  full.push_back("prog");
  for (const char* a : argv) {
    full.push_back(a);
  }
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, EqualsSyntax) {
  const Args args = parse({"--steps=128", "--rate=0.5"});
  EXPECT_EQ(args.get_int("steps", 0), 128);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Args, SpaceSyntax) {
  const Args args = parse({"--steps", "64"});
  EXPECT_EQ(args.get_int("steps", 0), 64);
}

TEST(Args, BareFlagIsTrue) {
  const Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Args, MissingKeysFallBack) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_EQ(args.get_string("absent", "dflt"), "dflt");
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_FALSE(args.has("absent"));
}

TEST(Args, PositionalArgumentsCollected) {
  const Args args = parse({"input.txt", "--k=2", "other"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "other");
}

TEST(Args, BoolRecognizedSpellings) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
}

TEST(Args, UintParsing) {
  const Args args = parse({"--big=18446744073709551615"});
  EXPECT_EQ(args.get_uint("big", 0), ~std::uint64_t{0});
}

TEST(Args, LaterFlagWins) {
  const Args args = parse({"--k=1", "--k=2"});
  EXPECT_EQ(args.get_int("k", 0), 2);
}

TEST(Args, UnknownListsUnrecognizedFlagsSorted) {
  const Args args = parse({"--zeta=1", "--alpha=2", "--known=3"});
  EXPECT_EQ(args.unknown({"known"}),
            (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_TRUE(args.unknown({"known", "alpha", "zeta"}).empty());
  EXPECT_TRUE(parse({}).unknown({"anything"}).empty());
}

TEST(Args, RequireKnownAcceptsExactVocabulary) {
  const Args args = parse({"--steps=10", "--seed=1"});
  EXPECT_NO_THROW(args.require_known({"steps", "seed", "unused"}));
}

TEST(Args, RequireKnownRejectsTypos) {
  const Args args = parse({"--stpes=10", "--seed=1"});
  try {
    args.require_known({"steps", "seed"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // The message names the offender and the accepted vocabulary.
    EXPECT_NE(what.find("--stpes"), std::string::npos) << what;
    EXPECT_NE(what.find("--steps"), std::string::npos) << what;
  }
}

TEST(Args, RequireKnownRejectsEverythingWhenVocabularyIsEmpty) {
  EXPECT_THROW(parse({"--x=1"}).require_known(std::vector<std::string>{}),
               std::invalid_argument);
  EXPECT_NO_THROW(parse({}).require_known(std::vector<std::string>{}));
}

TEST(Args, RequireKnownRejectsPositionalTokens) {
  // "agents=10" (missing dashes) must not silently fall back to defaults.
  const Args args = parse({"--seed=1", "agents=10"});
  try {
    args.require_known({"seed", "agents"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("agents=10"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace antdense::util
