#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace antdense::util {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full;
  full.push_back("prog");
  for (const char* a : argv) {
    full.push_back(a);
  }
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, EqualsSyntax) {
  const Args args = parse({"--steps=128", "--rate=0.5"});
  EXPECT_EQ(args.get_int("steps", 0), 128);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Args, SpaceSyntax) {
  const Args args = parse({"--steps", "64"});
  EXPECT_EQ(args.get_int("steps", 0), 64);
}

TEST(Args, BareFlagIsTrue) {
  const Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Args, MissingKeysFallBack) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_EQ(args.get_string("absent", "dflt"), "dflt");
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_FALSE(args.has("absent"));
}

TEST(Args, PositionalArgumentsCollected) {
  const Args args = parse({"input.txt", "--k=2", "other"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "other");
}

TEST(Args, BoolRecognizedSpellings) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
}

TEST(Args, UintParsing) {
  const Args args = parse({"--big=18446744073709551615"});
  EXPECT_EQ(args.get_uint("big", 0), ~std::uint64_t{0});
}

TEST(Args, LaterFlagWins) {
  const Args args = parse({"--k=1", "--k=2"});
  EXPECT_EQ(args.get_int("k", 0), 2);
}

}  // namespace
}  // namespace antdense::util
