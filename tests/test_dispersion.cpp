#include "swarm/dispersion.hpp"

#include <gtest/gtest.h>

#include "graph/torus2d.hpp"

namespace antdense::swarm {
namespace {

using graph::Torus2D;

DispersionConfig basic_config() {
  DispersionConfig cfg;
  cfg.num_agents = 100;
  cfg.epochs = 6;
  cfg.rounds_per_epoch = 60;
  cfg.density_threshold = 0.05;
  cfg.initial_patch_side = 8;
  return cfg;
}

TEST(Dispersion, Validation) {
  const Torus2D torus(64, 64);
  DispersionConfig cfg = basic_config();
  cfg.num_agents = 1;
  EXPECT_THROW(run_dispersion(torus, cfg, 1), std::invalid_argument);
  cfg = basic_config();
  cfg.epochs = 0;
  EXPECT_THROW(run_dispersion(torus, cfg, 1), std::invalid_argument);
  cfg = basic_config();
  cfg.initial_patch_side = 100;  // larger than torus
  EXPECT_THROW(run_dispersion(torus, cfg, 1), std::invalid_argument);
}

TEST(Dispersion, ProducesOneStatPerEpoch) {
  const Torus2D torus(64, 64);
  const DispersionResult r = run_dispersion(torus, basic_config(), 2);
  EXPECT_EQ(r.epochs.size(), 6u);
}

TEST(Dispersion, SpreadImprovesFromClusteredStart) {
  const Torus2D torus(64, 64);
  const DispersionResult r = run_dispersion(torus, basic_config(), 3);
  // Starting packed in an 8x8 patch, the final spread ratio should be
  // clearly better (larger) than the first epoch's.
  EXPECT_GT(r.epochs.back().spread_ratio, r.epochs.front().spread_ratio);
  // And the swarm should approach uniform spread (ratio near 1).
  EXPECT_GT(r.epochs.back().spread_ratio, 0.6);
}

TEST(Dispersion, DensityEstimatesFallAsSwarmSpreads) {
  const Torus2D torus(64, 64);
  const DispersionResult r = run_dispersion(torus, basic_config(), 4);
  EXPECT_LT(r.epochs.back().mean_density_estimate,
            r.epochs.front().mean_density_estimate);
}

TEST(Dispersion, FractionsAreProbabilities) {
  const Torus2D torus(64, 64);
  const DispersionResult r = run_dispersion(torus, basic_config(), 5);
  for (const auto& epoch : r.epochs) {
    EXPECT_GE(epoch.fraction_overcrowded, 0.0);
    EXPECT_LE(epoch.fraction_overcrowded, 1.0);
    EXPECT_GE(epoch.spread_ratio, 0.0);
  }
}

}  // namespace
}  // namespace antdense::swarm
