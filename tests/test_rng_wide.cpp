// Pins the wide-generation contract of rng/xoshiro_wide.hpp:
//   - lane l of XoshiroWide(root) IS the scalar xoshiro256++ stream at
//     derive_seed(root, kVectorLaneTag, l), bit for bit;
//   - the emitted sequence is lane-interleaved in draw order;
//   - generate() (whatever path was compiled: AVX2 or portable) equals
//     generate_portable() word for word — the SIMD/fallback equality
//     contract the vector engine's goldens rest on;
//   - WideStream is one flat sequence: operator() and fill() pops in any
//     mix produce the same words in the same order;
//   - golden pin of the first words at a fixed seed, so a silent change
//     to seeding, lane count, or the update cannot slip through;
// plus the batched Lemire helpers (rng::uniform_below_batch): equal to
// sequential uniform_below draws even when rejection forces the replay
// path, for shared and per-element bounds.
#include "rng/xoshiro_wide.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::rng {
namespace {

constexpr std::uint64_t kRoot = 0xC0FFEE5EEDULL;

TEST(XoshiroWide, LanesAreScalarStreamsAtDerivedSeeds) {
  XoshiroWide wide(kRoot);
  constexpr std::size_t kDraws = 64;  // per lane
  std::vector<std::uint64_t> words(kDraws * kWideLanes);
  wide.generate(words.data(), words.size());
  for (std::size_t l = 0; l < kWideLanes; ++l) {
    Xoshiro256pp scalar(derive_seed(kRoot, kVectorLaneTag, l));
    for (std::size_t d = 0; d < kDraws; ++d) {
      ASSERT_EQ(words[d * kWideLanes + l], scalar())
          << "lane " << l << " draw " << d;
    }
  }
}

TEST(XoshiroWide, DispatchedEqualsPortable) {
  XoshiroWide a(kRoot);
  XoshiroWide b(kRoot);
  constexpr std::size_t kWords = 1024;
  std::vector<std::uint64_t> wa(kWords);
  std::vector<std::uint64_t> wb(kWords);
  a.generate(wa.data(), kWords);
  b.generate_portable(wb.data(), kWords);
  EXPECT_EQ(wa, wb);
  for (std::size_t l = 0; l < kWideLanes; ++l) {
    EXPECT_EQ(a.lane_state(l), b.lane_state(l)) << "lane " << l;
  }
}

TEST(XoshiroWide, GoldenFirstBlock) {
  // First kWideLanes words at a fixed root: one draw per lane.  These
  // literals pin seeding (SplitMix64 through kVectorLaneTag), lane
  // order, and the xoshiro256++ output function all at once.
  XoshiroWide wide(0x5EEDULL);
  std::uint64_t words[kWideLanes];
  wide.generate(words, kWideLanes);
  Xoshiro256pp lane0(derive_seed(0x5EEDULL, kVectorLaneTag, std::uint64_t{0}));
  EXPECT_EQ(words[0], lane0());
  const std::uint64_t golden[kWideLanes] = {
      0xAAA5109207264813ULL, 0xD0799103C063F965ULL, 0x6B2CFDA1C1D1B07EULL,
      0x3B70FC655B992660ULL, 0x9C95D3C142284E43ULL, 0x95B25F983A6D6C88ULL,
      0x28FFB8E78EECCFEDULL, 0x3A1F527781298205ULL,
  };
  for (std::size_t l = 0; l < kWideLanes; ++l) {
    EXPECT_EQ(words[l], golden[l]) << "lane " << l;
  }
}

TEST(WideStream, MixedPopsAreOneFlatSequence) {
  WideStream reference(kRoot);
  constexpr std::size_t kTotal = 1500;
  std::vector<std::uint64_t> expected(kTotal);
  for (auto& w : expected) {
    w = reference();
  }

  WideStream mixed(kRoot);
  std::vector<std::uint64_t> got;
  got.reserve(kTotal);
  // Odd-sized pops straddling the buffer boundary on purpose.
  const std::size_t plan[] = {3, 255, 1, 500, 7, 300, 129, 305};
  for (const std::size_t n : plan) {
    if (n % 2 == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        got.push_back(mixed());
      }
    } else {
      std::vector<std::uint64_t> chunk(n);
      mixed.fill(chunk);
      got.insert(got.end(), chunk.begin(), chunk.end());
    }
  }
  ASSERT_EQ(got.size(), kTotal);
  EXPECT_EQ(got, expected);
}

TEST(UniformBelowBatch, SharedBoundMatchesSequential) {
  for (const std::uint64_t bound :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{6},
        std::uint64_t{7}, std::uint64_t{1000},
        (std::uint64_t{1} << 40) + 3}) {
    Xoshiro256pp gen_seq(kRoot);
    Xoshiro256pp gen_batch(kRoot);
    constexpr std::size_t kCount = 700;
    std::vector<std::uint64_t> batch(kCount);
    uniform_below_batch(gen_batch, bound, batch);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(batch[i], uniform_below(gen_seq, bound))
          << "bound " << bound << " index " << i;
    }
    // Same words consumed: the next draw must agree too.
    EXPECT_EQ(gen_batch(), gen_seq()) << "bound " << bound;
  }
}

TEST(UniformBelowBatch, ReplayPathMatchesSequentialUnderHeavyRejection) {
  // bound > 2^63 makes the rejection threshold ~2^63, so roughly half
  // of all words reject and nearly every block takes the replay path.
  const std::uint64_t bound = (std::uint64_t{1} << 63) + 12345;
  Xoshiro256pp gen_seq(kRoot);
  Xoshiro256pp gen_batch(kRoot);
  constexpr std::size_t kCount = 600;
  std::vector<std::uint64_t> batch(kCount);
  uniform_below_batch(gen_batch, bound, batch);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(batch[i], uniform_below(gen_seq, bound)) << "index " << i;
  }
  EXPECT_EQ(gen_batch(), gen_seq());
}

TEST(UniformBelowBatch, PerElementBoundsMatchSequential) {
  Xoshiro256pp bound_gen(7);
  constexpr std::size_t kCount = 700;
  std::vector<std::uint64_t> bounds(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    // Mostly small degrees, with occasional huge bounds to force
    // rejection replays.
    bounds[i] = i % 97 == 0 ? (std::uint64_t{1} << 63) + i + 1
                            : 1 + uniform_below(bound_gen, 64);
  }
  Xoshiro256pp gen_seq(kRoot);
  Xoshiro256pp gen_batch(kRoot);
  std::vector<std::uint64_t> batch(kCount);
  uniform_below_batch(gen_batch, std::span<const std::uint64_t>(bounds),
                      std::span<std::uint64_t>(batch));
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(batch[i], uniform_below(gen_seq, bounds[i])) << "index " << i;
  }
  EXPECT_EQ(gen_batch(), gen_seq());
}

TEST(UniformBelowBatch, WideStreamSourceMatchesScalarConsumption) {
  // The batch helper over a WideStream (the vector engine's real use)
  // must equal sequential scalar draws from an equal-seeded stream.
  WideStream stream_batch(kRoot);
  WideStream stream_seq(kRoot);
  constexpr std::size_t kCount = 500;
  std::vector<std::uint64_t> batch(kCount);
  uniform_below_batch(stream_batch, std::uint64_t{6}, batch);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(batch[i], uniform_below(stream_seq, std::uint64_t{6}))
        << "index " << i;
  }
  EXPECT_EQ(stream_batch(), stream_seq());
}

}  // namespace
}  // namespace antdense::rng
