#include "core/density_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/complete.hpp"
#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"
#include "stats/concentration.hpp"

namespace antdense::core {
namespace {

using graph::CompleteGraph;
using graph::Torus2D;

TEST(EstimateDensity, ResultShapeAndTruth) {
  const Torus2D torus(16, 16);
  const auto result = estimate_density(torus, 10, 100, 1);
  EXPECT_EQ(result.estimates.size(), 10u);
  EXPECT_DOUBLE_EQ(result.true_density, 9.0 / 256.0);
  EXPECT_EQ(result.rounds, 100u);
}

TEST(EstimateDensity, NeedsTwoAgents) {
  const Torus2D torus(8, 8);
  EXPECT_THROW(estimate_density(torus, 1, 10, 1), std::invalid_argument);
}

TEST(EstimateDensity, DeterministicInSeed) {
  const Torus2D torus(16, 16);
  const auto a = estimate_density(torus, 12, 64, 5);
  const auto b = estimate_density(torus, 12, 64, 5);
  EXPECT_EQ(a.estimates, b.estimates);
}

TEST(EstimateDensity, ConcentratesWithMoreRounds) {
  // Dense-enough torus so single runs already show shrinkage: compare
  // cross-agent spread at t=64 vs t=4096.
  const Torus2D torus(64, 64);
  constexpr std::uint32_t kAgents = 410;  // d ~ 0.1
  const auto coarse = estimate_density(torus, kAgents, 64, 9);
  const auto fine = estimate_density(torus, kAgents, 4096, 9);
  stats::Accumulator coarse_acc, fine_acc;
  for (double e : coarse.estimates) coarse_acc.add(e);
  for (double e : fine.estimates) fine_acc.add(e);
  EXPECT_LT(fine_acc.sample_stddev(), coarse_acc.sample_stddev());
}

TEST(EstimateDensity, TheoremOneBudgetDeliversAccuracy) {
  // End-to-end: ask bounds for the t that achieves (eps=0.25, delta=0.1)
  // at d~0.1 and verify the empirical quantile of the relative error.
  const Torus2D torus(64, 64);
  constexpr std::uint32_t kAgents = 410;
  const double d = (kAgents - 1.0) / 4096.0;
  const auto t = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(recommended_rounds(0.25, d, 0.1), 4096));
  std::vector<double> all;
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const auto result = estimate_density(torus, kAgents, t, 100 + trial);
    all.insert(all.end(), result.estimates.begin(), result.estimates.end());
  }
  const double eps90 = stats::epsilon_at_confidence(all, d, 0.9);
  EXPECT_LT(eps90, 0.25) << "t=" << t;
}

TEST(EstimateDensity, CompleteGraphMatchesChernoffScale) {
  const CompleteGraph g(4096);
  constexpr std::uint32_t kAgents = 410;
  const double d = (kAgents - 1.0) / 4096.0;
  const auto result = estimate_density(g, kAgents, 2048, 17);
  const double eps90 =
      stats::epsilon_at_confidence(result.estimates, d, 0.9);
  // Chernoff at delta=0.1: sqrt(6 log 20/(t d)) ~ 0.3; empirical should
  // be in the same ballpark (well under 2x).
  EXPECT_LT(eps90, 0.3);
}

TEST(RecommendedRounds, DelegatesToTheorem1) {
  EXPECT_EQ(recommended_rounds(0.1, 0.05, 0.01),
            theorem1_rounds(0.1, 0.05, 0.01));
}

}  // namespace
}  // namespace antdense::core
