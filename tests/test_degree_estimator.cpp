#include "netsize/degree_estimator.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "stats/accumulator.hpp"

namespace antdense::netsize {
namespace {

using graph::Graph;

TEST(DegreeFromPositions, ExactOnExplicitSample) {
  const Graph g = graph::make_star_graph(5);  // hub deg 4, leaves deg 1
  // Sample = {hub, leaf}: mean inverse degree = (1/4 + 1)/2 = 0.625.
  const double est = estimate_average_degree_from_positions(g, {0, 1});
  EXPECT_DOUBLE_EQ(est, 1.0 / 0.625);
}

TEST(DegreeFromPositions, RegularGraphIsExact) {
  const Graph g = graph::make_ring_graph(12);
  const double est = estimate_average_degree_from_positions(g, {0, 5, 7});
  EXPECT_DOUBLE_EQ(est, 2.0);
}

TEST(DegreeFromPositions, RejectsEmpty) {
  const Graph g = graph::make_ring_graph(5);
  EXPECT_THROW(estimate_average_degree_from_positions(g, {}),
               std::invalid_argument);
}

TEST(EstimateAverageDegree, StationaryModeConvergesToTruth) {
  // Theorem 31: with stationary samples, E[D] = 1/avg_deg exactly; the
  // average over many runs must match the true average degree 2|E|/|V|.
  const Graph g = graph::make_barabasi_albert_graph(300, 3, 51);
  const double truth = g.average_degree();
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 150; ++trial) {
    const auto r =
        estimate_average_degree(g, 400, true, 0, 0, 900 + trial);
    acc.add(r.inverse_degree_mean);
  }
  EXPECT_NEAR(acc.mean(), 1.0 / truth, 4.0 * acc.standard_error() + 1e-9);
}

TEST(EstimateAverageDegree, BurnInModeApproachesStationary) {
  // After long burn-in on a non-bipartite connected graph, estimates from
  // crawled walks match the stationary-mode estimates.
  const Graph g = graph::make_barabasi_albert_graph(200, 2, 61);
  stats::Accumulator crawled;
  stats::Accumulator ideal;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    crawled.add(estimate_average_degree(g, 200, false, 200, 0, 1300 + trial)
                    .average_degree_estimate);
    ideal.add(estimate_average_degree(g, 200, true, 0, 0, 1300 + trial)
                  .average_degree_estimate);
  }
  EXPECT_NEAR(crawled.mean(), ideal.mean(),
              4.0 * (crawled.standard_error() + ideal.standard_error()));
}

TEST(EstimateAverageDegree, ValidatesInputs) {
  const Graph g = graph::make_ring_graph(6);
  EXPECT_THROW(estimate_average_degree(g, 0, true, 0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(estimate_average_degree(g, 5, false, 10, 99, 1),
               std::invalid_argument);
}

TEST(EstimateAverageDegree, ResultFieldsConsistent) {
  const Graph g = graph::make_ring_graph(10);
  const auto r = estimate_average_degree(g, 50, true, 0, 0, 2);
  EXPECT_EQ(r.samples, 50u);
  EXPECT_NEAR(r.inverse_degree_mean * r.average_degree_estimate, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.average_degree_estimate, 2.0);  // regular: exact
}

}  // namespace
}  // namespace antdense::netsize
