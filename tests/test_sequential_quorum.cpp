#include "core/sequential_quorum.hpp"

#include <gtest/gtest.h>

#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"

namespace antdense::core {
namespace {

using graph::Torus2D;

SequentialQuorumConfig basic_config() {
  SequentialQuorumConfig cfg;
  cfg.threshold = 0.06;
  cfg.gamma = 1.0;
  cfg.delta = 0.1;
  cfg.check_every = 16;
  cfg.max_rounds = 4096;
  return cfg;
}

TEST(SequentialQuorum, Validation) {
  const Torus2D torus(16, 16);
  SequentialQuorumConfig cfg = basic_config();
  EXPECT_THROW(run_sequential_quorum(torus, 1, cfg, 1),
               std::invalid_argument);
  cfg.check_every = 0;
  EXPECT_THROW(run_sequential_quorum(torus, 10, cfg, 1),
               std::invalid_argument);
  cfg = basic_config();
  cfg.threshold = 0.0;
  EXPECT_THROW(run_sequential_quorum(torus, 10, cfg, 1),
               std::invalid_argument);
}

TEST(SequentialQuorum, ResultShape) {
  const Torus2D torus(32, 32);
  const auto r = run_sequential_quorum(torus, 50, basic_config(), 2);
  EXPECT_EQ(r.decisions.size(), 50u);
  EXPECT_EQ(r.decision_round.size(), 50u);
  EXPECT_EQ(r.budget, 4096u);
  for (std::uint32_t round : r.decision_round) {
    EXPECT_GE(round, 1u);
    EXPECT_LE(round, r.budget);
  }
}

TEST(SequentialQuorum, HighDensityDecidesQuorum) {
  // d ~ 0.25 >> threshold*(1+gamma) = 0.12: nearly all agents must
  // declare quorum, and on average well before the budget.
  const Torus2D torus(32, 32);
  const auto r = run_sequential_quorum(torus, 257, basic_config(), 3);
  std::uint32_t quorum = 0;
  stats::Accumulator rounds;
  for (std::size_t i = 0; i < r.decisions.size(); ++i) {
    quorum += r.decisions[i] == QuorumDecision::kQuorum ? 1 : 0;
    rounds.add(r.decision_round[i]);
  }
  EXPECT_GT(quorum, 250u);
  EXPECT_LT(rounds.mean(), 0.5 * r.budget);
}

TEST(SequentialQuorum, LowDensityDecidesNoQuorum) {
  // d ~ 0.015 << threshold = 0.06.
  const Torus2D torus(32, 32);
  const auto r = run_sequential_quorum(torus, 16, basic_config(), 4);
  std::uint32_t no_quorum = 0;
  for (const auto d : r.decisions) {
    no_quorum += d == QuorumDecision::kNoQuorum ? 1 : 0;
  }
  EXPECT_GE(no_quorum, 15u);
}

TEST(SequentialQuorum, FartherDensityDecidesFaster) {
  // Early stopping: a density far above the band resolves sooner than
  // one just above it.
  const Torus2D torus(32, 32);
  auto mean_round = [&](std::uint32_t agents, std::uint64_t seed) {
    const auto r = run_sequential_quorum(torus, agents, basic_config(), seed);
    stats::Accumulator acc;
    for (std::uint32_t round : r.decision_round) {
      acc.add(round);
    }
    return acc.mean();
  };
  const double far = mean_round(308, 5);    // d ~ 0.30
  const double near = mean_round(139, 6);   // d ~ 0.135, just above band
  EXPECT_LT(far, near);
}

TEST(SequentialQuorum, DeterministicInSeed) {
  const Torus2D torus(16, 16);
  SequentialQuorumConfig cfg = basic_config();
  cfg.max_rounds = 512;
  const auto a = run_sequential_quorum(torus, 30, cfg, 7);
  const auto b = run_sequential_quorum(torus, 30, cfg, 7);
  EXPECT_EQ(a.decision_round, b.decision_round);
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.decisions[i]),
              static_cast<int>(b.decisions[i]));
  }
}

TEST(SequentialQuorum, BudgetDefaultsToTheoremOne) {
  const Torus2D torus(32, 32);
  SequentialQuorumConfig cfg = basic_config();
  cfg.max_rounds = 0;
  const auto r = run_sequential_quorum(torus, 20, cfg, 8);
  const QuorumDetector detector(cfg.threshold, cfg.gamma, cfg.delta);
  const auto expected = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      detector.required_rounds(), torus.num_nodes()));
  EXPECT_EQ(r.budget, expected);
}

}  // namespace
}  // namespace antdense::core
