#include "sensor/field.hpp"
#include "sensor/token_sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/accumulator.hpp"

namespace antdense::sensor {
namespace {

using graph::Torus2D;

TEST(SensorField, BernoulliValuesAreBinaryAndMeanNearP) {
  const Torus2D torus(64, 64);
  const SensorField field = SensorField::bernoulli(torus, 0.3, 1);
  for (std::uint32_t x = 0; x < 10; ++x) {
    const double v = field.value(Torus2D::pack(x, 0));
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
  EXPECT_NEAR(field.mean(), 0.3, 0.03);
}

TEST(SensorField, UniformMeanNearMidpoint) {
  const Torus2D torus(64, 64);
  const SensorField field = SensorField::uniform(torus, 2.0, 4.0, 2);
  EXPECT_NEAR(field.mean(), 3.0, 0.05);
}

TEST(SensorField, GradientMeanIsBaseline) {
  const Torus2D torus(32, 32);
  const SensorField field = SensorField::gradient(torus);
  // Sinusoids integrate to zero over full periods.
  EXPECT_NEAR(field.mean(), 1.0, 1e-9);
}

TEST(SensorField, RejectsWrongSize) {
  const Torus2D torus(4, 4);
  EXPECT_THROW(SensorField(torus, std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST(TokenSampling, ResultConsistency) {
  const Torus2D torus(64, 64);
  const SensorField field = SensorField::uniform(torus, 0.0, 1.0, 3);
  const auto r = run_token_sampling(field, 200, 4);
  EXPECT_EQ(r.steps, 200u);
  EXPECT_GE(r.unique_sensors, 1u);
  EXPECT_LE(r.unique_sensors, 200u);
}

TEST(TokenSampling, WalkEstimateUnbiasedOnIidField) {
  const Torus2D torus(64, 64);
  const SensorField field = SensorField::bernoulli(torus, 0.4, 5);
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 500; ++trial) {
    acc.add(run_token_sampling(field, 256, 600 + trial).walk_estimate);
  }
  EXPECT_NEAR(acc.mean(), field.mean(), 4.0 * acc.standard_error() + 1e-12);
}

TEST(TokenSampling, RepeatVisitPenaltyIsModest) {
  // Corollary 15's promise: on the 2-D grid the walk estimate's standard
  // deviation is within a log factor of independent sampling's.
  const Torus2D torus(128, 128);
  const SensorField field = SensorField::bernoulli(torus, 0.5, 7);
  stats::Accumulator walk_acc, indep_acc;
  for (std::uint64_t trial = 0; trial < 400; ++trial) {
    const auto r = run_token_sampling(field, 512, 800 + trial);
    walk_acc.add(r.walk_estimate);
    indep_acc.add(r.independent_estimate);
  }
  const double ratio = walk_acc.sample_stddev() / indep_acc.sample_stddev();
  EXPECT_LT(ratio, 4.0) << "walk sd " << walk_acc.sample_stddev()
                        << " indep sd " << indep_acc.sample_stddev();
}

TEST(TokenSampling, UniqueSensorsGrowSublinearlyButSubstantially) {
  const Torus2D torus(256, 256);
  const SensorField field = SensorField::uniform(torus, 0.0, 1.0, 9);
  stats::Accumulator unique;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    unique.add(run_token_sampling(field, 1024, 900 + trial).unique_sensors);
  }
  // 2-D walk range after t steps is Theta(t / log t): expect a large
  // fraction of distinct sensors but clearly below t.
  EXPECT_GT(unique.mean(), 150.0);
  EXPECT_LT(unique.mean(), 1000.0);
}

TEST(TokenSampling, DeterministicInSeed) {
  const Torus2D torus(32, 32);
  const SensorField field = SensorField::gradient(torus);
  const auto a = run_token_sampling(field, 100, 12);
  const auto b = run_token_sampling(field, 100, 12);
  EXPECT_DOUBLE_EQ(a.walk_estimate, b.walk_estimate);
  EXPECT_EQ(a.unique_sensors, b.unique_sensors);
}

}  // namespace
}  // namespace antdense::sensor
