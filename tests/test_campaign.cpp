// Campaign engine: axis parsing and expansion (grid/zip/list, cartesian
// order, identity hashing, order-independent seed derivation), the JSONL
// journal (round-trip, truncated-tail tolerance, corruption detection),
// the jthread scheduler (thread-count-invariant journals at 100+
// experiments, resume-after-interrupt equals an uninterrupted run), and
// the aggregation pipeline (group-by reducers, CSV/JSON artifacts,
// Theorem-1 envelope checks).
#include "campaign/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "scenario/registry.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace antdense {
namespace {

using campaign::Aggregate;
using campaign::Axis;
using campaign::CampaignSpec;
using campaign::Journal;
using campaign::PlannedExperiment;
using campaign::RunOptions;
using campaign::RunReport;
using util::JsonValue;

CampaignSpec parse_campaign(const std::string& text) {
  return CampaignSpec::from_json(JsonValue::parse(text));
}

std::vector<std::string> sorted_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

// ---------------------------------------------------------------------
// Axes and expansion
// ---------------------------------------------------------------------

TEST(CampaignAxis, GridZipListShapes) {
  const Axis grid = Axis::from_json(JsonValue::parse(
      R"({"kind": "grid", "key": "agents", "values": [10, 20, 30]})"));
  EXPECT_EQ(grid.kind, Axis::Kind::kGrid);
  EXPECT_EQ(grid.points.size(), 3u);
  EXPECT_EQ(grid.points[1].find("agents")->as_uint(), 20u);

  const Axis zip = Axis::from_json(JsonValue::parse(
      R"({"kind": "zip", "keys": ["eps", "delta"],
          "values": [[0.1, 0.05], [0.2, 0.1]]})"));
  EXPECT_EQ(zip.points.size(), 2u);
  EXPECT_DOUBLE_EQ(zip.points[0].find("eps")->as_double(), 0.1);
  EXPECT_DOUBLE_EQ(zip.points[0].find("delta")->as_double(), 0.05);

  const Axis list = Axis::from_json(JsonValue::parse(
      R"({"kind": "list",
          "specs": [{"lazy": 0.0}, {"lazy": 0.3, "agents": 9}]})"));
  EXPECT_EQ(list.points.size(), 2u);
  EXPECT_EQ(list.points[1].find("agents")->as_uint(), 9u);
}

TEST(CampaignAxis, MalformedAxesThrow) {
  const char* bad[] = {
      R"({"key": "agents", "values": [1]})",                 // no kind
      R"({"kind": "spiral", "key": "agents", "values": [1]})",
      R"({"kind": "grid", "values": [1]})",                  // no key
      R"({"kind": "grid", "key": "agents"})",                // no values
      R"({"kind": "grid", "key": "agents", "values": []})",  // empty
      R"({"kind": "grid", "key": "agents", "values": [1], "extra": 2})",
      R"({"kind": "grid", "key": "threads", "values": [1, 2]})",
      R"({"kind": "zip", "keys": ["eps"], "values": [[0.1, 0.2]]})",
      R"({"kind": "zip", "keys": [], "values": []})",
      R"({"kind": "list", "specs": [3]})",  // spec not an object
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW(Axis::from_json(JsonValue::parse(text)),
                 std::invalid_argument);
  }
}

TEST(CampaignSpecParse, DefaultsAndUnknownKeys) {
  const CampaignSpec empty = parse_campaign("{}");
  EXPECT_EQ(empty.name, "campaign");
  EXPECT_EQ(empty.seed, 42u);
  EXPECT_EQ(empty.threads, 0u);
  EXPECT_TRUE(empty.axes.empty());
  // No axes: the campaign is its base spec alone.
  EXPECT_EQ(empty.expand().size(), 1u);

  EXPECT_THROW(parse_campaign(R"({"axis": []})"), std::invalid_argument);
  EXPECT_THROW(parse_campaign(R"({"base": {"agnets": 1}})"),
               std::invalid_argument);
}

TEST(CampaignExpand, CartesianProductFirstAxisSlowest) {
  const CampaignSpec camp = parse_campaign(R"({
    "base": {"agents": 10, "rounds": 5},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["ring:64", "complete:32"]},
      {"kind": "grid", "key": "agents", "values": [4, 6, 8]}
    ]})");
  const std::vector<PlannedExperiment> planned = camp.expand();
  ASSERT_EQ(planned.size(), 6u);
  EXPECT_EQ(planned[0].spec.topology, "ring:64");
  EXPECT_EQ(planned[0].spec.agents, 4u);
  EXPECT_EQ(planned[2].spec.topology, "ring:64");
  EXPECT_EQ(planned[2].spec.agents, 8u);
  EXPECT_EQ(planned[3].spec.topology, "complete:32");
  EXPECT_EQ(planned[3].spec.agents, 4u);
  // Base fields not named by an axis carry through.
  for (const PlannedExperiment& p : planned) {
    EXPECT_EQ(p.spec.rounds, 5u);
  }
}

TEST(CampaignExpand, IdentitiesAndSeedsAreContentDerived) {
  const char* forward = R"({
    "seed": 11,
    "base": {"rounds": 5},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["ring:64", "complete:32"]},
      {"kind": "grid", "key": "agents", "values": [4, 6]}
    ]})";
  // Same points, axes swapped: different expansion order, same specs.
  const char* swapped = R"({
    "seed": 11,
    "base": {"rounds": 5},
    "axes": [
      {"kind": "grid", "key": "agents", "values": [4, 6]},
      {"kind": "grid", "key": "topology",
       "values": ["ring:64", "complete:32"]}
    ]})";
  auto pairs = [](const CampaignSpec& camp) {
    std::set<std::pair<std::string, std::uint64_t>> out;
    for (const PlannedExperiment& p : camp.expand()) {
      out.insert({p.id, p.seed});
      EXPECT_EQ(p.spec.seed, p.seed);
      EXPECT_LT(p.seed, std::uint64_t{1} << 53);
    }
    return out;
  };
  const auto a = pairs(parse_campaign(forward));
  const auto b = pairs(parse_campaign(swapped));
  EXPECT_EQ(a.size(), 4u);  // all identities distinct
  EXPECT_EQ(a, b);

  // A different campaign seed re-seeds every experiment but keeps ids.
  std::string reseeded = forward;
  reseeded.replace(reseeded.find("11"), 2, "12");
  const auto c = pairs(parse_campaign(reseeded));
  std::set<std::string> ids_a, ids_c;
  std::set<std::uint64_t> seeds_a, seeds_c;
  for (const auto& [id, seed] : a) {
    ids_a.insert(id);
    seeds_a.insert(seed);
  }
  for (const auto& [id, seed] : c) {
    ids_c.insert(id);
    seeds_c.insert(seed);
  }
  EXPECT_EQ(ids_a, ids_c);
  EXPECT_NE(seeds_a, seeds_c);
}

TEST(CampaignExpand, DuplicateIdentitiesThrow) {
  const CampaignSpec camp = parse_campaign(R"({
    "axes": [{"kind": "list", "specs": [{"agents": 8}, {"agents": 8}]}]})");
  EXPECT_THROW(camp.expand(), std::invalid_argument);
  // Distinguishing the duplicates by seed resolves it.
  const CampaignSpec fixed = parse_campaign(R"({
    "axes": [{"kind": "list",
              "specs": [{"agents": 8, "seed": 1},
                        {"agents": 8, "seed": 2}]}]})");
  EXPECT_EQ(fixed.expand().size(), 2u);
}

TEST(CampaignExpand, InvalidExpandedSpecsFailFast) {
  const CampaignSpec camp = parse_campaign(R"({
    "axes": [{"kind": "grid", "key": "agents", "values": [1]}]})");
  EXPECT_THROW(camp.expand(), std::invalid_argument);  // needs >= 2 agents
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

JsonValue minimal_record(const std::string& id) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", campaign::kJournalSchema);
  doc.set("campaign", "t");
  doc.set("id", id);
  return doc;
}

TEST(CampaignJournal, AppendLoadRoundTripsAndTracksIds) {
  const std::string path = temp_path("campaign_journal_roundtrip.jsonl");
  {
    Journal journal(path);
    journal.append(minimal_record("aa"));
    journal.append(minimal_record("bb"));
  }
  const std::vector<JsonValue> records = Journal::load(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].find("id")->as_string(), "bb");
  EXPECT_EQ(Journal::completed_ids(records),
            (std::set<std::string>{"aa", "bb"}));
  std::remove(path.c_str());
  EXPECT_TRUE(Journal::load(path).empty());  // missing file = empty
}

TEST(CampaignJournal, TruncatedTailDroppedCorruptionThrows) {
  const std::string path = temp_path("campaign_journal_tail.jsonl");
  {
    std::ofstream out(path);
    out << minimal_record("aa").dump(0) << "\n";
    out << R"({"schema": "antdense.campaign.v1", "campaign": "t", "id")";
    // no newline: the record was cut mid-write by a kill
  }
  const std::vector<JsonValue> records = Journal::load(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].find("id")->as_string(), "aa");

  // The same fragment anywhere but the tail is corruption, not progress.
  {
    std::ofstream out(path);
    out << R"({"schema": "antdense.campaign.v1", "campaign": "t", "id")"
        << "\n";
    out << minimal_record("aa").dump(0) << "\n";
  }
  EXPECT_THROW(Journal::load(path), std::invalid_argument);

  // So is a malformed final line that IS newline-terminated: append()
  // only ever tears a record by losing a suffix (the newline last), so
  // a complete garbage line cannot be a kill artifact.
  {
    std::ofstream out(path);
    out << minimal_record("aa").dump(0) << "\n";
    out << "not json at all\n";
  }
  EXPECT_THROW(Journal::load(path), std::invalid_argument);

  // Wrong-schema lines are rejected even at the tail.
  {
    std::ofstream out(path);
    out << R"({"schema": "something.else.v9"})" << "\n";
  }
  EXPECT_THROW(Journal::load(path), std::invalid_argument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Scheduler: determinism and resume
// ---------------------------------------------------------------------

/// 2 topologies x 25 agent counts x 2 round budgets = 100 tiny
/// experiments — the acceptance-criterion scale.
CampaignSpec hundred_experiment_campaign() {
  std::ostringstream agents;
  for (int a = 4; a < 29; ++a) {
    agents << (a == 4 ? "" : ", ") << a;
  }
  return parse_campaign(R"({
    "name": "det",
    "seed": 5,
    "base": {"trials": 1},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["ring:64", "complete:32"]},
      {"kind": "grid", "key": "agents", "values": [)" +
                        agents.str() + R"(]},
      {"kind": "grid", "key": "rounds", "values": [3, 6]}
    ]})");
}

TEST(CampaignScheduler, JournalBitIdenticalAcrossThreadCounts) {
  const CampaignSpec camp = hundred_experiment_campaign();
  ASSERT_EQ(camp.expand().size(), 100u);

  const std::string path1 = temp_path("campaign_det_t1.jsonl");
  const std::string path4 = temp_path("campaign_det_t4.jsonl");
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const RunReport r1 = campaign::run_campaign(camp, path1, serial);
  const RunReport r4 = campaign::run_campaign(camp, path4, parallel);
  EXPECT_EQ(r1.executed, 100u);
  EXPECT_EQ(r4.executed, 100u);

  const std::vector<std::string> lines1 = sorted_lines(path1);
  EXPECT_EQ(lines1.size(), 100u);
  EXPECT_EQ(lines1, sorted_lines(path4));
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST(CampaignScheduler, InnerThreadsDoNotChangeTheJournal) {
  // Within-experiment parallelism (inner_threads -> ScenarioSpec::
  // threads) is a pure resource knob: the journal must be bit-identical
  // to the historical single-threaded-experiment regime.
  const CampaignSpec camp = parse_campaign(R"({
    "name": "inner",
    "seed": 11,
    "base": {"engine": "sharded", "trials": 1},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["ring:64", "complete:32"]},
      {"kind": "grid", "key": "agents", "values": [6, 10]},
      {"kind": "grid", "key": "rounds", "values": [4]}
    ]})");
  const std::string path1 = temp_path("campaign_inner_t1.jsonl");
  const std::string path4 = temp_path("campaign_inner_t4.jsonl");
  RunOptions plain;
  plain.threads = 2;
  RunOptions wide;
  wide.threads = 2;
  wide.inner_threads = 4;
  wide.on_diagnostic = [](const std::string&) {};  // clamp is expected
  campaign::run_campaign(camp, path1, plain);
  campaign::run_campaign(camp, path4, wide);
  EXPECT_EQ(sorted_lines(path1), sorted_lines(path4));
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST(CampaignScheduler, OverbudgetThreadRequestsAreClampedLoudly) {
  const CampaignSpec camp = parse_campaign(R"({
    "name": "clamp",
    "base": {"agents": 6, "rounds": 3, "trials": 1},
    "axes": [
      {"kind": "grid", "key": "seed", "values": [1, 2, 3]}
    ]})");
  const unsigned hardware = util::default_thread_count();
  const std::string path = temp_path("campaign_clamp.jsonl");
  RunOptions options;
  // Guaranteed overbudget on any machine: hw workers x (hw + 1) inner.
  options.threads = hardware;
  options.inner_threads = hardware + 1;
  std::vector<std::string> diagnostics;
  options.on_diagnostic = [&](const std::string& message) {
    diagnostics.push_back(message);
  };
  const RunReport report = campaign::run_campaign(camp, path, options);
  EXPECT_EQ(report.executed, 3u);  // clamped, not failed
  ASSERT_FALSE(diagnostics.empty());
  bool mentions_clamp = false;
  for (const std::string& message : diagnostics) {
    if (message.find("clamp") != std::string::npos &&
        message.find("hardware_concurrency") != std::string::npos) {
      mentions_clamp = true;
    }
  }
  EXPECT_TRUE(mentions_clamp) << diagnostics.front();
  std::remove(path.c_str());
}

TEST(CampaignScheduler, WorkerOversubscriptionIsAllowedButReported) {
  // inner_threads == 1 keeps the historical regime: N workers run even
  // on fewer cores (differential tests depend on real multi-worker
  // interleaving), but the scheduler now says so.
  const CampaignSpec camp = parse_campaign(R"({
    "name": "over",
    "base": {"agents": 6, "rounds": 3, "trials": 1},
    "axes": [
      {"kind": "grid", "key": "seed", "values": [1, 2, 3, 4]}
    ]})");
  const std::string path = temp_path("campaign_over.jsonl");
  RunOptions options;
  options.threads = util::default_thread_count() + 3;
  std::vector<std::string> diagnostics;
  options.on_diagnostic = [&](const std::string& message) {
    diagnostics.push_back(message);
  };
  const RunReport report = campaign::run_campaign(camp, path, options);
  EXPECT_EQ(report.executed, 4u);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].find("oversubscribed"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CampaignScheduler, InterruptedRunResumesToTheSameJournal) {
  const CampaignSpec camp = hundred_experiment_campaign();
  const std::string full_path = temp_path("campaign_resume_full.jsonl");
  const std::string split_path = temp_path("campaign_resume_split.jsonl");

  RunOptions options;
  options.threads = 2;
  const RunReport full = campaign::run_campaign(camp, full_path, options);
  EXPECT_EQ(full.cached, 0u);

  // "Interrupt" after 33 experiments (the cap journals exactly what an
  // asynchronous kill would, minus at most one partial line — covered
  // below), then resume by re-running.
  RunOptions capped = options;
  capped.max_experiments = 33;
  const RunReport first =
      campaign::run_campaign(camp, split_path, capped);
  EXPECT_EQ(first.executed, 33u);
  EXPECT_EQ(first.remaining, 67u);

  // Simulate the kill landing mid-append: chop the final record in half.
  {
    std::ifstream in(split_path);
    std::stringstream text;
    text << in.rdbuf();
    std::string content = text.str();
    content.resize(content.size() - 40);
    std::ofstream out(split_path, std::ios::trunc);
    out << content;
  }

  const RunReport second =
      campaign::run_campaign(camp, split_path, options);
  EXPECT_EQ(second.cached, 32u);  // the chopped record reruns
  EXPECT_EQ(second.executed, 68u);
  EXPECT_EQ(sorted_lines(split_path), sorted_lines(full_path));

  // A third run is a no-op: everything cached.
  const RunReport third =
      campaign::run_campaign(camp, split_path, options);
  EXPECT_EQ(third.cached, 100u);
  EXPECT_EQ(third.executed, 0u);
  std::remove(full_path.c_str());
  std::remove(split_path.c_str());
}

TEST(CampaignScheduler, ShouldStopCutsTheRunShortButJournalsCleanly) {
  const CampaignSpec camp = hundred_experiment_campaign();
  const std::string path = temp_path("campaign_should_stop.jsonl");

  // Trip the stop signal once the first experiment completes — the
  // cooperative shape a SIGINT/SIGTERM handler drives through
  // antdense_sweep.  Workers finish what they already claimed, so a few
  // more may land, but the vast majority must stay unclaimed.
  std::atomic<bool> stop{false};
  RunOptions interrupted;
  interrupted.threads = 2;
  interrupted.should_stop = [&stop] { return stop.load(); };
  interrupted.on_complete = [&stop](const PlannedExperiment&, std::size_t,
                                    std::size_t) { stop.store(true); };
  const RunReport first = campaign::run_campaign(camp, path, interrupted);
  EXPECT_GE(first.executed, 1u);
  EXPECT_GT(first.remaining, 0u) << "a stopped run must report leftovers";
  EXPECT_EQ(first.executed + first.remaining, first.planned);

  // Everything that executed was journaled before the stop took hold:
  // the journal tail is flushed, records parse, ids are complete.
  const std::vector<JsonValue> records = Journal::load(path);
  EXPECT_EQ(records.size(), first.executed);

  // Resuming without should_stop finishes the campaign, reusing every
  // journaled record — the same contract as --max-experiments.
  RunOptions resume;
  resume.threads = 2;
  const RunReport second = campaign::run_campaign(camp, path, resume);
  EXPECT_EQ(second.cached, first.executed);
  EXPECT_EQ(second.executed, first.planned - first.executed);
  EXPECT_EQ(second.remaining, 0u);
  std::remove(path.c_str());
}

TEST(CampaignScheduler, RecordsCarrySchemaAndResolvedRounds) {
  const CampaignSpec camp = parse_campaign(R"({
    "name": "rec",
    "base": {"topology": "complete:32", "agents": 8, "rounds": 0,
             "eps": 0.5, "delta": 0.2},
    "axes": []})");
  const std::string path = temp_path("campaign_records.jsonl");
  campaign::run_campaign(camp, path, RunOptions{});
  const std::vector<JsonValue> records = Journal::load(path);
  ASSERT_EQ(records.size(), 1u);
  const JsonValue& rec = records[0];
  EXPECT_EQ(rec.find("schema")->as_string(), campaign::kJournalSchema);
  EXPECT_EQ(rec.find("campaign")->as_string(), "rec");
  EXPECT_EQ(rec.find("id")->as_string().size(), 16u);
  // Declared spec keeps rounds=0 (planned); the result records what ran.
  EXPECT_EQ(rec.find("spec")->find("rounds")->as_uint(), 0u);
  EXPECT_GT(rec.find("result")->find("rounds")->as_uint(), 0u);
  EXPECT_EQ(rec.find("spec")->find("threads"), nullptr);
  EXPECT_GT(
      rec.find("result")->find("summary")->find("count")->as_uint(), 0u);
  std::remove(path.c_str());
}

TEST(CampaignScheduler, RejectsAForeignJournal) {
  const std::string path = temp_path("campaign_foreign.jsonl");
  campaign::run_campaign(parse_campaign(R"({"name": "mine",
    "base": {"topology": "complete:32", "agents": 4, "rounds": 2}})"),
                         path, RunOptions{});
  EXPECT_THROW(
      campaign::run_campaign(parse_campaign(R"({"name": "theirs",
    "base": {"topology": "complete:32", "agents": 4, "rounds": 2}})"),
                             path, RunOptions{}),
      std::invalid_argument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

/// Synthetic journal records with known metrics.
JsonValue synthetic_record(const std::string& topology,
                           std::uint32_t rounds, double rel_error,
                           double within, double eps, double delta) {
  JsonValue spec = JsonValue::object();
  spec.set("topology", topology);
  spec.set("workload", "density");
  spec.set("eps", eps);
  spec.set("delta", delta);

  JsonValue summary = JsonValue::object();
  summary.set("count", std::uint64_t{10});
  summary.set("within_eps", within);

  JsonValue result = JsonValue::object();
  result.set("rounds", rounds);
  result.set("rel_error", rel_error);
  result.set("summary", std::move(summary));

  JsonValue doc = JsonValue::object();
  doc.set("schema", campaign::kJournalSchema);
  doc.set("campaign", "agg");
  doc.set("id", topology + std::to_string(rounds));
  doc.set("spec", std::move(spec));
  doc.set("result", std::move(result));
  return doc;
}

TEST(CampaignAggregate, GroupsAndReduces) {
  const std::vector<JsonValue> records = {
      synthetic_record("ring:64", 10, 0.2, 0.90, 0.5, 0.2),
      synthetic_record("ring:128", 10, 0.4, 0.70, 0.5, 0.2),
      synthetic_record("ring:64", 20, 0.1, 0.95, 0.5, 0.2),
      synthetic_record("torus2d:8x8", 10, 0.3, 0.85, 0.5, 0.2),
  };
  const Aggregate agg =
      campaign::aggregate(records, {"family", "rounds"});
  EXPECT_EQ(agg.records, 4u);
  ASSERT_EQ(agg.groups.size(), 3u);  // (ring,10), (ring,20), (torus2d,10)

  // std::map order: "ring" < "torus2d", "10" < "20".
  const campaign::AggregateGroup& ring10 = agg.groups[0];
  EXPECT_EQ(ring10.key, (std::vector<std::string>{"ring", "10"}));
  EXPECT_EQ(ring10.experiments, 2u);
  EXPECT_DOUBLE_EQ(ring10.mean_rel_error, 0.3);
  EXPECT_DOUBLE_EQ(ring10.max_rel_error, 0.4);
  EXPECT_DOUBLE_EQ(ring10.mean_within_eps, 0.8);
  EXPECT_DOUBLE_EQ(ring10.min_within_eps, 0.7);
  ASSERT_TRUE(ring10.has_envelope);
  EXPECT_DOUBLE_EQ(ring10.delta, 0.2);
  EXPECT_TRUE(ring10.envelope_met);  // 0.8 >= 1 - 0.2

  const campaign::AggregateGroup& ring20 = agg.groups[1];
  EXPECT_EQ(ring20.experiments, 1u);
  EXPECT_TRUE(ring20.envelope_met);  // 0.95 >= 0.8
}

TEST(CampaignAggregate, MixedEnvelopeGroupsReportNone) {
  const std::vector<JsonValue> records = {
      synthetic_record("ring:64", 10, 0.2, 0.9, 0.5, 0.2),
      synthetic_record("ring:64", 20, 0.2, 0.9, 0.3, 0.2),  // other eps
  };
  const Aggregate agg = campaign::aggregate(records, {"family"});
  ASSERT_EQ(agg.groups.size(), 1u);
  EXPECT_FALSE(agg.groups[0].has_envelope);
}

TEST(CampaignAggregate, CsvAndJsonArtifacts) {
  const std::vector<JsonValue> records = {
      synthetic_record("ring:64", 10, 0.2, 0.9, 0.5, 0.2),
      synthetic_record("torus2d:8x8", 10, 0.3, 0.8, 0.5, 0.2),
  };
  const Aggregate agg =
      campaign::aggregate(records, {"family", "workload"});

  const std::string csv = agg.to_csv();
  std::istringstream lines(csv);
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header,
            "family,workload,experiments,mean_rel_error,max_rel_error,"
            "mean_within_eps,min_within_eps,envelope_eps,envelope_delta,"
            "envelope_met");
  std::size_t rows = 0;
  for (std::string row; std::getline(lines, row);) {
    if (!row.empty()) {
      ++rows;
    }
  }
  EXPECT_EQ(rows, 2u);

  const JsonValue doc =
      JsonValue::parse(agg.to_json().dump());  // round-trips
  EXPECT_EQ(doc.find("schema")->as_string(), campaign::kAggregateSchema);
  EXPECT_EQ(doc.find("records")->as_uint(), 2u);
  ASSERT_EQ(doc.find("groups")->items().size(), 2u);
  const JsonValue& g0 = doc.find("groups")->items()[0];
  EXPECT_EQ(g0.find("key")->find("family")->as_string(), "ring");
  EXPECT_TRUE(g0.find("envelope")->is_object());
}

TEST(CampaignAggregate, UnknownKeysAndDottedPaths) {
  const std::vector<JsonValue> records = {
      synthetic_record("ring:64", 10, 0.2, 0.9, 0.5, 0.2)};
  EXPECT_THROW(campaign::aggregate(records, {"flavor"}),
               std::invalid_argument);
  EXPECT_THROW(campaign::aggregate(records, {}), std::invalid_argument);
  // Dotted paths reach into records directly.
  const Aggregate agg =
      campaign::aggregate(records, {"spec.eps", "result.rounds"});
  ASSERT_EQ(agg.groups.size(), 1u);
  EXPECT_EQ(agg.groups[0].key,
            (std::vector<std::string>{"0.5", "10"}));
}

// End-to-end: a real (tiny) campaign aggregated against the Theorem-1
// envelope per topology family.
TEST(CampaignAggregate, EndToEndEnvelopeCurves) {
  const CampaignSpec camp = parse_campaign(R"({
    "name": "e2e",
    "seed": 3,
    "base": {"agents": 24, "eps": 0.9, "delta": 0.5, "trials": 2},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["complete:64", "ring:64"]},
      {"kind": "grid", "key": "rounds", "values": [8, 16]}
    ]})");
  const std::string path = temp_path("campaign_e2e.jsonl");
  campaign::run_campaign(camp, path, RunOptions{});
  const Aggregate agg = campaign::aggregate(Journal::load(path),
                                            {"family", "rounds"});
  EXPECT_EQ(agg.records, 4u);
  ASSERT_EQ(agg.groups.size(), 4u);
  for (const campaign::AggregateGroup& g : agg.groups) {
    EXPECT_EQ(g.experiments, 1u);
    EXPECT_TRUE(g.has_envelope);
    EXPECT_DOUBLE_EQ(g.eps, 0.9);
    EXPECT_GE(g.mean_within_eps, 0.0);
    EXPECT_LE(g.mean_within_eps, 1.0);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Scheduler telemetry
// ---------------------------------------------------------------------

TEST(CampaignScheduler, PublishesTelemetryWithoutChangingTheJournal) {
  const CampaignSpec camp = parse_campaign(R"({
    "name": "telemetry",
    "seed": 5,
    "base": {"workload": "density", "agents": 12, "rounds": 10,
             "trials": 1},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["ring:64", "complete:32", "ring:128"]}
    ]})");
  const std::string plain_path = temp_path("campaign_tel_off.jsonl");
  const std::string wired_path = temp_path("campaign_tel_on.jsonl");

  campaign::run_campaign(camp, plain_path, RunOptions{});

  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  RunOptions wired;
  wired.telemetry = obs::Telemetry{&metrics, &trace};
  const RunReport report = campaign::run_campaign(camp, wired_path, wired);
  EXPECT_EQ(report.executed, 3u);

  // Telemetry never reaches the results: journals are bit-identical.
  EXPECT_EQ(sorted_lines(plain_path), sorted_lines(wired_path));

  // Scheduler counters and gauges reconcile with the report.
  EXPECT_EQ(metrics.counter("antdense_campaign_experiments_total").value(),
            3u);
  EXPECT_EQ(metrics.gauge("antdense_campaign_scheduled").value(), 3);
  EXPECT_EQ(metrics.gauge("antdense_campaign_completed").value(), 3);
  EXPECT_EQ(metrics.gauge("antdense_campaign_queue_depth").value(), 0);

  // Journal-byte accounting matches the file the scheduler wrote.
  std::ifstream in(wired_path, std::ios::binary | std::ios::ate);
  EXPECT_EQ(metrics.counter("antdense_campaign_journal_bytes_total").value(),
            static_cast<std::uint64_t>(in.tellg()));

  // Every experiment timed, and every one left an experiment span plus
  // engine phase spans on the trace.
  EXPECT_EQ(metrics.histogram("antdense_campaign_experiment_seconds")
                .snapshot()
                .count,
            3u);
  bool saw_experiment = false;
  bool saw_journal_append = false;
  const JsonValue trace_doc = trace.to_json();
  for (const JsonValue& e : trace_doc.find("traceEvents")->items()) {
    const std::string& name = e.find("name")->as_string();
    saw_experiment = saw_experiment || name == "experiment";
    saw_journal_append = saw_journal_append || name == "journal-append";
  }
  EXPECT_TRUE(saw_experiment);
  EXPECT_TRUE(saw_journal_append);

  // A resumed (fully cached) run schedules zero and appends nothing.
  const RunReport cached = campaign::run_campaign(camp, wired_path, wired);
  EXPECT_EQ(cached.executed, 0u);
  EXPECT_EQ(metrics.counter("antdense_campaign_experiments_total").value(),
            3u);
  std::remove(plain_path.c_str());
  std::remove(wired_path.c_str());
}

}  // namespace
}  // namespace antdense
